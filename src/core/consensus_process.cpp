#include "core/consensus_process.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace ooc {

// Object-facing context: wraps the host process context, tagging every
// outbound message with the host's current (round, stage) so it reaches the
// peer instance of the same object.
class ConsensusProcess::ObjectContextImpl final : public ObjectContext {
 public:
  explicit ObjectContextImpl(ConsensusProcess& host) noexcept : host_(host) {}

  ProcessId self() const noexcept override { return host_.ctx().self(); }
  std::size_t processCount() const noexcept override {
    return host_.ctx().processCount();
  }
  Tick now() const noexcept override { return host_.ctx().now(); }
  Rng& rng() noexcept override { return host_.ctx().rng(); }

  void send(ProcessId to, std::unique_ptr<Message> inner) override {
    post(to, MessagePtr(std::move(inner)));
  }

  void broadcast(const Message& inner) override {
    fanout(MessagePtr(inner.clone()));
  }

  void post(ProcessId to, MessagePtr inner) override {
    host_.ctx().post(to, makeMessage<TaggedMessage>(host_.round_, host_.stage_,
                                                    std::move(inner)));
  }

  void fanout(MessagePtr inner) override {
    // One envelope, one shared inner payload, n recipients — the whole
    // broadcast allocates exactly one TaggedMessage and zero clones.
    host_.ctx().fanout(makeMessage<TaggedMessage>(host_.round_, host_.stage_,
                                                  std::move(inner)));
  }

  TimerId setTimer(Tick delay) override { return host_.ctx().setTimer(delay); }
  void cancelTimer(TimerId id) noexcept override {
    host_.ctx().cancelTimer(id);
  }

 private:
  ConsensusProcess& host_;
};

ConsensusProcess::ConsensusProcess(Value input,
                                   DetectorFactory detectorFactory,
                                   DriverFactory driverFactory,
                                   Options options)
    : value_(input),
      detectorFactory_(std::move(detectorFactory)),
      driverFactory_(std::move(driverFactory)),
      options_(options) {
  if (!detectorFactory_)
    throw std::invalid_argument("detector factory is required");
  if (!driverFactory_)
    throw std::invalid_argument("driver factory is required");
  objectContext_ = std::make_unique<ObjectContextImpl>(*this);
}

ConsensusProcess::~ConsensusProcess() = default;

void ConsensusProcess::onStart() {
  beginRound();
  pump();
}

void ConsensusProcess::beginRound() {
  if (options_.decideAfterRound > 0 && round_ >= options_.decideAfterRound &&
      !decided_) {
    // Fixed-round decision rule (classic Phase-King): the value held after
    // the configured number of completed rounds is final.
    decided_ = true;
    decisionValue_ = value_;
    decisionRound_ = round_;
    ctx().decide(value_);
  }
  const bool retired =
      decided_ && options_.participateRoundsAfterDecide > 0 &&
      round_ >= decisionRound_ + options_.participateRoundsAfterDecide;
  if (round_ >= options_.maxRounds || retired) {
    exhausted_ = true;
    detector_.reset();
    driver_.reset();
    return;
  }
  ++round_;
  stage_ = Stage::kDetect;
  driver_.reset();
  useDriverValue_ = false;
  rounds_.emplace_back();
  rounds_.back().detectorInput = value_;
  detector_ = detectorFactory_(round_);
  detectorInvokedAt_ = ctx().now();
  OOC_TRACE("p", ctx().self(), " round ", round_, " detect(", value_, ")");
  detector_->invoke(*objectContext_, value_);
  replayBuffered();
}

void ConsensusProcess::pump() {
  while (!exhausted_) {
    if (stage_ == Stage::kDetect) {
      if (!detector_) return;
      const auto outcome = detector_->result();
      if (!outcome) return;
      rounds_.back().detectorOutcome = *outcome;
      OOC_TRACE("p", ctx().self(), " round ", round_, " detector -> ",
                toString(*outcome));
      if (options_.onDetectorOutcome)
        options_.onDetectorOutcome(round_, *outcome, ctx().now());

      bool runDriver = options_.alwaysRunDriver;
      useDriverValue_ = false;
      switch (outcome->confidence) {
        case Confidence::kCommit:
          value_ = outcome->value;
          if (options_.decideOnCommit && !decided_) {
            decided_ = true;
            decisionValue_ = outcome->value;
            decisionRound_ = round_;
            ctx().decide(outcome->value);
          }
          break;
        case Confidence::kAdopt:
          if (options_.kind == TemplateKind::kAcConciliator) {
            runDriver = true;
            useDriverValue_ = true;
          } else {
            value_ = outcome->value;
          }
          break;
        case Confidence::kVacillate:
          assert(options_.kind == TemplateKind::kVacReconciliator &&
                 "AC detectors must not return vacillate");
          runDriver = true;
          useDriverValue_ = true;
          break;
      }

      detector_.reset();
      if (runDriver) {
        stage_ = Stage::kDrive;
        driver_ = driverFactory_(round_);
        driverInvokedAt_ = ctx().now();
        driver_->invoke(*objectContext_, *outcome);
        replayBuffered();
        continue;
      }
      beginRound();
      continue;
    }

    // Stage::kDrive
    if (!driver_) return;
    const auto driven = driver_->result();
    if (!driven) return;
    rounds_.back().driverValue = *driven;
    OOC_TRACE("p", ctx().self(), " round ", round_, " driver -> ", *driven);
    if (options_.onDriverValue)
      options_.onDriverValue(round_, *driven, ctx().now());
    if (useDriverValue_) value_ = *driven;
    beginRound();
  }
}

void ConsensusProcess::onMessage(ProcessId from, const Message& message) {
  const auto* tagged = message.as<TaggedMessage>();
  if (tagged == nullptr) return;  // not a template message; ignore
  dispatch(from, *tagged);
  pump();
}

void ConsensusProcess::dispatch(ProcessId from, const TaggedMessage& tagged) {
  if (exhausted_) return;
  if (tagged.round() < round_) return;  // stale: round already finished
  const bool current =
      tagged.round() == round_ && tagged.stage() == stage_;
  if (current) {
    if (stage_ == Stage::kDetect && detector_) {
      detector_->onMessage(*objectContext_, from, tagged.inner());
    } else if (stage_ == Stage::kDrive && driver_) {
      driver_->onMessage(*objectContext_, from, tagged.inner());
    }
    return;
  }
  // Same round but a stage we already passed: stale, drop.
  if (tagged.round() == round_ && tagged.stage() == Stage::kDetect &&
      stage_ == Stage::kDrive) {
    return;
  }
  // Future round/stage: buffer until this process gets there. The payload
  // is shared with the envelope (and with every other recipient buffering
  // the same broadcast) — no copy.
  buffered_.push_back(BufferedMessage{tagged.round(), tagged.stage(), from,
                                      tagged.innerPtr()});
}

void ConsensusProcess::replayBuffered() {
  // Deliver buffered messages now addressed to the current object, in
  // arrival order. New messages are never added during replay (objects only
  // consume here), so a single compaction pass suffices.
  std::vector<BufferedMessage> keep;
  keep.reserve(buffered_.size());
  for (auto& entry : buffered_) {
    if (entry.round == round_ && entry.stage == stage_) {
      if (stage_ == Stage::kDetect && detector_) {
        detector_->onMessage(*objectContext_, entry.from, *entry.inner);
      } else if (stage_ == Stage::kDrive && driver_) {
        driver_->onMessage(*objectContext_, entry.from, *entry.inner);
      }
    } else if (entry.round > round_ ||
               (entry.round == round_ && stage_ == Stage::kDetect &&
                entry.stage == Stage::kDrive)) {
      keep.push_back(std::move(entry));
    }
    // else: stale, drop
  }
  buffered_ = std::move(keep);
}

void ConsensusProcess::onTimer(TimerId id) {
  if (stage_ == Stage::kDetect && detector_) {
    detector_->onTimer(*objectContext_, id);
  } else if (stage_ == Stage::kDrive && driver_) {
    driver_->onTimer(*objectContext_, id);
  }
  pump();
}

void ConsensusProcess::onTick(Tick tick) {
  // An object invoked earlier in this same tick (e.g. a round begun while
  // processing this tick's messages) must not see this barrier: its first
  // exchange closes at the NEXT barrier, keeping all lockstep processes on
  // the same calendar regardless of whether they advanced via a message or
  // via the barrier itself.
  if (stage_ == Stage::kDetect && detector_ && tick > detectorInvokedAt_) {
    detector_->onTick(*objectContext_, tick);
  } else if (stage_ == Stage::kDrive && driver_ && tick > driverInvokedAt_) {
    driver_->onTick(*objectContext_, tick);
  }
  pump();
}

}  // namespace ooc

// Auditors for the object contracts of paper §2 — the instruments behind the
// property-based tests and the faithfulness experiments (E1, E4, E7, E9).
//
// An audit examines one round: the detector inputs of the participating
// correct processes and the outcomes they received. Processes that never
// finished the round (run stopped, crashed mid-round) contribute no outcome
// and are skipped by the checks, which mirrors the contracts: they constrain
// only values actually returned.
#pragma once

#include <optional>
#include <vector>

#include "core/confidence.hpp"
#include "core/consensus_process.hpp"
#include "util/types.hpp"

namespace ooc {

struct RoundAudit {
  /// Every returned value was some participant's input this round.
  bool validity = true;
  /// Unanimous input v implies every outcome is (commit, v).
  bool convergence = true;
  /// Someone committed u implies everyone holds u with adopt or commit.
  bool coherenceAdoptCommit = true;
  /// Nobody committed and someone adopted u implies all adopters hold u.
  bool coherenceVacillateAdopt = true;

  bool anyCommit = false;
  bool anyAdopt = false;
  bool anyVacillate = false;

  bool ok() const noexcept {
    return validity && convergence && coherenceAdoptCommit &&
           coherenceVacillateAdopt;
  }
};

struct AuditOptions {
  /// Check that adopt-level values are inputs. Off for Phase-King: its AC
  /// can return (adopt, 2) with the sentinel (the paper's Lemma 2 proves
  /// validity only for unanimous inputs; see EXPERIMENTS.md).
  bool requireAdoptValidity = true;
  /// Check that vacillate-level values are inputs.
  bool requireVacillateValidity = true;
  /// Check coherence over vacillate & adopt. This is a VAC-only property:
  /// a plain adopt-commit object (e.g. Phase-King's, audited under the AC
  /// template) may legally return differing adopt values in a commit-free
  /// round — the conciliator exists to repair exactly that.
  bool checkVacillateAdoptCoherence = true;
};

/// Audits one round given parallel vectors over the participating correct
/// processes. `outcomes[i]` is empty if process i never completed the round.
RoundAudit auditRound(const std::vector<Value>& inputs,
                      const std::vector<std::optional<Outcome>>& outcomes,
                      const AuditOptions& options = {});

/// View over a set of template processes, e.g. the correct subset of a run.
struct RoundView {
  std::vector<Value> inputs;
  std::vector<std::optional<Outcome>> outcomes;
};

/// Extracts round m (1-based) across `processes`. Processes that never
/// started round m are omitted entirely; processes that started it but got
/// no outcome contribute an empty outcome.
RoundView collectRound(const std::vector<const ConsensusProcess*>& processes,
                       Round m);

/// Highest round started by any of `processes`.
Round maxRoundStarted(const std::vector<const ConsensusProcess*>& processes);

/// Audits every started round; returns one audit per round (index m-1).
std::vector<RoundAudit> auditAllRounds(
    const std::vector<const ConsensusProcess*>& processes,
    const AuditOptions& options = {});

}  // namespace ooc

// Round-scheduling policies for the consensus template (ROADMAP item 3).
//
// The paper's Algorithm 1/2 loop is written as lockstep detect→drive
// rounds, but van Renesse's "Asynchronous Consensus Without Rounds" shows
// the round structure is incidental to correctness: what matters is that
// detector outcomes gate value updates, not that every process walks the
// same round at the same tick. The template therefore treats round
// advancement as a pluggable policy:
//
//   * lockstep      — the classic loop: an object's successor is invoked
//                     inline the moment it completes, courtesy drives block
//                     the round, and tick barriers are forwarded so
//                     synchronous objects stay on one exchange calendar.
//                     Byte-identical to the pre-policy engine (all committed
//                     goldens are pinned against it).
//   * event-driven  — successor activation is deferred to a fresh wakeup
//                     event instead of running inline, and no tick barrier
//                     is forwarded: each process advances on its own
//                     message-arrival cadence, so rounds skew across
//                     processes (Lynch–Sastry style asynchronous
//                     activation). Requires async-mode objects.
//   * ooo-driver    — out-of-order drives: a courtesy drive (one whose
//                     value the template will not use) detaches into a
//                     "loose" driver that keeps exchanging while the next
//                     round's detector is already live, pipelining the
//                     drive wave of round m under the detect wave of m+1.
//
// The policy is capability-gated by the composition registry (a lockstep
// detector cannot run under skew; the timer reconciliator's timeout race
// presumes round-aligned exchanges — see DESIGN.md §14) and serialized in
// scenarios, counterexamples, and service configs.
#pragma once

#include <memory>
#include <optional>
#include <string>

namespace ooc {

enum class SchedulingPolicy {
  kLockstep,
  kEventDriven,
  kOooDriver,
};

const char* toString(SchedulingPolicy policy) noexcept;

/// Parses the wire names "lockstep", "event-driven", "ooo-driver";
/// nullopt on anything else.
std::optional<SchedulingPolicy> parseSchedulingPolicy(
    const std::string& name) noexcept;

/// The policy object the hosting ConsensusProcess consults at each
/// round-advancement decision point. Implementations are stateless — all
/// scheduling state (live objects, buffered messages, pending wakeups)
/// stays in the host, so one scheduler could serve many processes.
class RoundScheduler {
 public:
  virtual ~RoundScheduler() = default;

  virtual SchedulingPolicy policy() const noexcept = 0;

  /// Invoke a completed object's successor inline, within the event that
  /// completed it. When false the host schedules a fresh wakeup event and
  /// activates the successor there (event-driven skew).
  virtual bool advancesInline() const noexcept = 0;

  /// Detach courtesy drives (driver value unused by the template) into
  /// loose drivers that run concurrently with the next round's detector.
  virtual bool detachesCourtesyDrives() const noexcept = 0;

  /// Forward lockstep tick barriers to live objects. Policies that drop
  /// the barrier only compose with async-mode objects (registry-gated).
  virtual bool forwardsTickBarrier() const noexcept = 0;
};

std::unique_ptr<RoundScheduler> makeRoundScheduler(SchedulingPolicy policy);

}  // namespace ooc

// The generic consensus template (paper §3, Algorithms 1 and 2).
//
// One ConsensusProcess instance is one processor executing:
//
//   Consensus(v):
//     m <- 0
//     while true:
//       m <- m + 1
//       (X, sigma) <- Detector(v, m)          // VAC or AC
//       switch X:
//         vacillate: v <- Driver(X, sigma, m)  // VAC template only
//         adopt:     v <- sigma                // (AC template: v <- Driver)
//         commit:    v <- sigma; decide sigma
//
// Differences from the raw pseudocode, both called out in DESIGN.md:
//  * decide records the decision with the simulator monitor and the process
//    keeps participating (the paper's §4.1 note; Lemma 1's agreement step
//    needs deciders in the next round's detector).
//  * With Options::alwaysRunDriver the drive step runs every round for every
//    process and its value is used only when the template says so. This is
//    required by lockstep algorithms (Phase-King's king broadcasts every
//    round, and all processes must stay tick-aligned), and matches the
//    original Phase-King where a committing processor observes the king but
//    keeps its own value.
//
// *When* the next object of the loop is invoked is not fixed by the
// template: it is delegated to a RoundScheduler policy (core/scheduling.hpp).
// Under the default lockstep policy the loop above runs inline and
// tick-aligned, exactly as before the policy split; event-driven defers
// each activation to a fresh wakeup event (per-process round skew);
// ooo-driver detaches courtesy drives into "loose" drivers that keep
// exchanging while the next round's detector is already live (DESIGN.md
// §14).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "core/objects.hpp"
#include "core/scheduling.hpp"
#include "core/tagged_message.hpp"
#include "sim/process.hpp"

namespace ooc {

/// Which template is executed.
enum class TemplateKind {
  /// Algorithm 1: VAC detector; driver (reconciliator) value is used on
  /// vacillate; adopt/commit take the detector's value.
  kVacReconciliator,
  /// Algorithm 2: AC detector; driver (conciliator) value is used on adopt;
  /// commit takes the detector's value. Detectors must never return
  /// vacillate under this template (asserted).
  kAcConciliator,
};

/// Per-round record kept for property auditing and experiments.
struct RoundRecord {
  Value detectorInput = kNoValue;
  std::optional<Outcome> detectorOutcome;
  std::optional<Value> driverValue;
};

class ConsensusProcess final : public Process {
 public:
  struct Options {
    TemplateKind kind = TemplateKind::kVacReconciliator;
    /// Round-advancement policy (core/scheduling.hpp). The default
    /// reproduces the classic inline lockstep loop byte-for-byte.
    SchedulingPolicy scheduling = SchedulingPolicy::kLockstep;
    /// Run the drive step every round regardless of the detector outcome
    /// (lockstep algorithms); the template still only *uses* the driver's
    /// value when the outcome calls for it.
    bool alwaysRunDriver = false;
    /// Decide when the detector commits (the paper's rule). Disable for
    /// algorithms whose drivers lack validity under faults — with a
    /// Byzantine king, Phase-King's conciliator can hand adopters a value
    /// different from a just-committed one, breaking agreement (see
    /// EXPERIMENTS.md, "the early-decision gap"); the classic algorithm is
    /// recovered by disabling this and setting decideAfterRound.
    bool decideOnCommit = true;
    /// If non-zero, decide the currently held value once this many rounds
    /// have completed (classic Phase-King: t+1 phases).
    Round decideAfterRound = 0;
    /// Safety cap: after this many rounds the process stops participating
    /// (reported as non-termination by the harness).
    Round maxRounds = 100000;
    /// After deciding, keep participating for this many further rounds,
    /// then retire (stop sending and consuming). 0 = participate forever
    /// (the default; single-shot runs are stopped by the simulator once
    /// everyone decided). For Ben-Or-style detectors 1 extra round is
    /// enough: a commit in round m makes every correct process decide by
    /// round m+1 (used by the multi-slot replicated log, where instances
    /// must quiesce on their own).
    Round participateRoundsAfterDecide = 0;
    /// Telemetry taps (may be empty). Invoked the moment a round's
    /// detector/driver invocation returns, with the simulated tick — the
    /// live counterpart of the post-run rounds() record, used for metric
    /// collection and timeline annotation. Observation only: taps must not
    /// send, arm timers, or otherwise touch the run.
    std::function<void(Round, const Outcome&, Tick)> onDetectorOutcome;
    std::function<void(Round, Value, Tick)> onDriverValue;
  };

  ConsensusProcess(Value input, DetectorFactory detectorFactory,
                   DriverFactory driverFactory, Options options);
  ~ConsensusProcess() override;

  void onStart() override;
  void onMessage(ProcessId from, const Message& message) override;
  void onTimer(TimerId id) override;
  void onTick(Tick tick) override;

  // --- observations --------------------------------------------------------
  bool decided() const noexcept { return decided_; }
  Value decisionValue() const noexcept { return decisionValue_; }
  /// Round in which this process decided (valid when decided()).
  Round decisionRound() const noexcept { return decisionRound_; }
  /// Round currently being executed (1-based; 0 before start).
  Round currentRound() const noexcept { return round_; }
  bool exhaustedRounds() const noexcept { return exhausted_; }
  /// One record per completed or in-progress round, index m-1.
  const std::vector<RoundRecord>& rounds() const noexcept { return rounds_; }

  SchedulingPolicy schedulingPolicy() const noexcept {
    return options_.scheduling;
  }
  /// Rounds whose detector was invoked while a loose driver of an earlier
  /// round was still live — the structural witness of out-of-order
  /// scheduling. Always 0 under lockstep and event-driven (they never
  /// detach drives).
  std::uint64_t overlapWitnesses() const noexcept { return overlapWitnesses_; }
  /// Activations handed to a fresh wakeup event instead of running inline.
  /// Always 0 under lockstep and ooo-driver.
  std::uint64_t deferredActivations() const noexcept {
    return deferredActivations_;
  }
  /// Loose (detached courtesy) drivers still exchanging.
  std::size_t looseDriversLive() const noexcept { return loose_.size(); }
  /// Future-round messages currently buffered / high-water mark / dropped
  /// because they could never be consumed before post-decide retirement
  /// (the bounded-buffer rule; see dispatch()).
  std::size_t bufferedCount() const noexcept { return buffered_.size(); }
  std::size_t bufferedPeak() const noexcept { return bufferedPeak_; }
  std::uint64_t bufferedDropped() const noexcept { return bufferedDropped_; }

 private:
  class ObjectContextImpl;
  struct BufferedMessage {
    Round round;
    Stage stage;
    ProcessId from;
    /// Shared with the in-flight envelope — buffering never copies.
    MessagePtr inner;
  };
  /// A detached courtesy drive (ooo-driver policy): keeps exchanging for
  /// its own round while the frontier has already moved on. Its value is
  /// never used — the template only detaches drives whose value it would
  /// discard anyway.
  struct LooseDriver {
    Round round;
    Tick invokedAt;
    std::unique_ptr<Driver> driver;
  };
  /// What a scheduled wakeup event will do (event-driven policy).
  enum class PendingWake { kNone, kBeginRound, kInvokeDriver };

  void beginRound();
  /// Advances through completed objects until blocked on communication.
  void pump();
  void dispatch(ProcessId from, const TaggedMessage& tagged);
  void replayBuffered();
  void invokeFrontierDriver(const Outcome& outcome);
  void launchLooseDriver(const Outcome& outcome);
  void pollLooseDrivers();
  void scheduleWakeup(PendingWake pending);
  void onWakeup();
  void pruneBufferedAfterDecide();
  void noteTimerOwner(TimerId id);
  void dropTimerOwner(TimerId id) noexcept;
  bool takeTimerOwner(TimerId id, Round& round, Stage& stage) noexcept;

  Value value_;
  DetectorFactory detectorFactory_;
  DriverFactory driverFactory_;
  Options options_;
  std::unique_ptr<RoundScheduler> scheduler_;

  std::unique_ptr<ObjectContextImpl> objectContext_;
  std::unique_ptr<AgreementDetector> detector_;
  std::unique_ptr<Driver> driver_;
  std::vector<LooseDriver> loose_;

  Round round_ = 0;
  Stage stage_ = Stage::kDetect;
  /// Coordinates of the object currently being called into: outbound
  /// messages and armed timers are attributed to it. Under lockstep this
  /// always equals (round_, stage_); with loose drivers it may lag.
  Round activeRound_ = 0;
  Stage activeStage_ = Stage::kDetect;
  /// Ticks at which the current objects were invoked: a lockstep barrier for
  /// tick T must not reach an object invoked at T (its exchange calendar
  /// starts at the next barrier).
  Tick detectorInvokedAt_ = 0;
  Tick driverInvokedAt_ = 0;
  /// Whether the current driver's value will be adopted when it completes.
  bool useDriverValue_ = false;
  bool decided_ = false;
  Value decisionValue_ = kNoValue;
  Round decisionRound_ = 0;
  bool exhausted_ = false;

  PendingWake pending_ = PendingWake::kNone;
  std::optional<Outcome> pendingOutcome_;
  std::optional<TimerId> wakeTimer_;
  /// Timer ownership by (round, stage), kept only under non-lockstep
  /// policies where several objects may hold timers at once.
  std::vector<std::tuple<TimerId, Round, Stage>> timerOwners_;

  std::uint64_t overlapWitnesses_ = 0;
  std::uint64_t deferredActivations_ = 0;
  std::size_t bufferedPeak_ = 0;
  std::uint64_t bufferedDropped_ = 0;

  std::vector<RoundRecord> rounds_;
  std::vector<BufferedMessage> buffered_;
};

}  // namespace ooc

// VAC built from two adopt-commit objects (paper §5: "we have shown that VAC
// may be implemented using two AC objects").
//
// Construction: run AC1 with the caller's input v, obtaining (c1, u1); run
// AC2 with u1, obtaining (c2, u2); return
//
//     (commit,    u2)  if c1 = commit and c2 = commit
//     (adopt,     u2)  if c2 = commit (but c1 = adopt)
//     (vacillate, u2)  otherwise (c2 = adopt)
//
// Why this satisfies the VAC contract:
//  * Convergence — unanimous v: AC1 converges to (commit, v) everywhere, so
//    AC2 inputs are unanimous and converge too => (commit, v).
//  * Coherence over adopt & commit — if P got VAC-commit then P's c2 is a
//    commit with value u, so by AC2 coherence every process's u2 = u; labels
//    are adopt or commit depending on their c1 — never vacillate, because
//    P's c1 = commit(u1=u) forces, by AC1 coherence, every u1 = u, making
//    AC2's inputs unanimous, so every c2 = commit.
//  * Coherence over vacillate & adopt — if nobody VAC-committed and Q got
//    VAC-adopt u, Q's c2 = commit(u), so by AC2 coherence all u2 = u; every
//    other adopter therefore carries u, and vacillators may carry anything.
//  * Validity/termination — values only flow through the two ACs.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/objects.hpp"

namespace ooc {

class VacFromTwoAc final : public AgreementDetector {
 public:
  /// Takes ownership of the two single-use AC instances. Both must be
  /// genuine adopt-commit objects (never return vacillate).
  VacFromTwoAc(std::unique_ptr<AgreementDetector> first,
               std::unique_ptr<AgreementDetector> second);
  ~VacFromTwoAc() override;

  void invoke(ObjectContext& ctx, Value v) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  void onTick(ObjectContext& ctx, Tick tick) override;
  void onTimer(ObjectContext& ctx, TimerId id) override;
  std::optional<Outcome> result() const override;

  /// Factory adapter: lifts a DetectorFactory producing ACs into one
  /// producing VACs.
  static DetectorFactory liftFactory(DetectorFactory acFactory);

 private:
  class SubContext;
  struct Buffered {
    ProcessId from;
    /// Shared with the in-flight envelope — buffering never copies.
    MessagePtr inner;
  };

  void advance(ObjectContext& ctx);
  AgreementDetector& active() noexcept {
    return phase_ == 0 ? *first_ : *second_;
  }

  std::unique_ptr<AgreementDetector> first_;
  std::unique_ptr<AgreementDetector> second_;
  std::unique_ptr<SubContext> subContext0_;
  std::unique_ptr<SubContext> subContext1_;
  int phase_ = 0;  // which AC is running
  std::optional<Outcome> firstOutcome_;
  std::optional<Outcome> final_;
  std::vector<Buffered> bufferedForSecond_;
};

/// The trivial downgrade: any VAC is an AC once vacillate is relabelled
/// adopt. Legal because a VAC guarantees that when anyone commits, nobody
/// vacillates and all values agree (paper §3), which is exactly AC
/// coherence. Used to demonstrate that the reverse direction — recovering
/// the third knowledge state from AC outputs — is what fails (§5).
class AcFromVac final : public AgreementDetector {
 public:
  explicit AcFromVac(std::unique_ptr<AgreementDetector> vac);

  void invoke(ObjectContext& ctx, Value v) override { vac_->invoke(ctx, v); }
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override {
    vac_->onMessage(ctx, from, inner);
  }
  void onTick(ObjectContext& ctx, Tick tick) override {
    vac_->onTick(ctx, tick);
  }
  void onTimer(ObjectContext& ctx, TimerId id) override {
    vac_->onTimer(ctx, id);
  }
  std::optional<Outcome> result() const override;

  static DetectorFactory liftFactory(DetectorFactory vacFactory);

 private:
  std::unique_ptr<AgreementDetector> vac_;
};

}  // namespace ooc

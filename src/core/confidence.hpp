// Confidence levels and outcomes of agreement-detector objects (paper §2).
#pragma once

#include <string>

#include "util/types.hpp"

namespace ooc {

/// Confidence attached to a detector's returned value.
///
/// Adopt-commit objects use {adopt, commit}; vacillate-adopt-commit objects
/// add the third, weakest level: `vacillate` tells the receiver only that no
/// process committed in this round.
enum class Confidence : unsigned char { kVacillate, kAdopt, kCommit };

inline const char* toString(Confidence c) noexcept {
  switch (c) {
    case Confidence::kVacillate: return "vacillate";
    case Confidence::kAdopt: return "adopt";
    case Confidence::kCommit: return "commit";
  }
  return "?";
}

/// The (confidence, value) pair returned by AC and VAC objects.
struct Outcome {
  Confidence confidence = Confidence::kVacillate;
  Value value = kNoValue;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

inline std::string toString(const Outcome& o) {
  return std::string("(") + toString(o.confidence) + ", " +
         std::to_string(o.value) + ")";
}

}  // namespace ooc

// Envelope that routes object-protocol messages to the right per-round
// object instance inside a ConsensusProcess.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/message.hpp"
#include "util/types.hpp"

namespace ooc {

/// Which of the round's two steps a message belongs to.
enum class Stage : unsigned char { kDetect = 0, kDrive = 1 };

inline const char* toString(Stage s) noexcept {
  return s == Stage::kDetect ? "detect" : "drive";
}

/// (round, stage)-tagged envelope around an object's inner message. The
/// inner payload is shared (immutable, refcounted): cloning the envelope or
/// buffering the payload for replay adds a ref, never a deep copy.
class TaggedMessage final : public MessageBase<TaggedMessage> {
 public:
  TaggedMessage(Round round, Stage stage, MessagePtr inner)
      : round_(round), stage_(stage), inner_(std::move(inner)) {
    if (!inner_) throw std::invalid_argument("inner message is required");
  }

  Round round() const noexcept { return round_; }
  Stage stage() const noexcept { return stage_; }
  const Message& inner() const noexcept { return *inner_; }
  /// The shared inner payload — what receivers keep when they buffer.
  const MessagePtr& innerPtr() const noexcept { return inner_; }

  std::string describe() const override {
    return "[r" + std::to_string(round_) + "/" + toString(stage_) + "] " +
           inner_->describe();
  }

 private:
  Round round_;
  Stage stage_;
  MessagePtr inner_;
};

}  // namespace ooc

// The object roles of the decomposition framework (paper §2–§3).
//
// A consensus round is detect-then-drive:
//   * an AgreementDetector (adopt-commit or vacillate-adopt-commit) observes
//     the system and reports how close it is to agreement;
//   * a Driver (conciliator or reconciliator) shakes the preferences so a
//     later round can commit.
//
// Both roles are distributed objects: one invocation spans message exchanges
// among all processes. The library represents an invocation as a per-process
// *instance* that is fed the messages addressed to it (the hosting
// ConsensusProcess tags and routes messages by (round, stage)) and exposes a
// poll-style result(). Instances are single-use: one object per process per
// round.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/confidence.hpp"
#include "sim/message.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ooc {

/// Communication surface handed to object instances. Messages sent here are
/// automatically tagged with the hosting process's (round, stage) and routed
/// to the peer instance of the same object.
class ObjectContext {
 public:
  virtual ~ObjectContext() = default;

  virtual ProcessId self() const noexcept = 0;
  virtual std::size_t processCount() const noexcept = 0;
  virtual Tick now() const noexcept = 0;
  virtual Rng& rng() noexcept = 0;

  virtual void send(ProcessId to, std::unique_ptr<Message> inner) = 0;
  virtual void broadcast(const Message& inner) = 0;

  /// Shared-payload variants, mirroring Context::post/fanout: the inner
  /// payload is enveloped once and the envelope shared across recipients —
  /// zero per-recipient copies. Default shims clone and fall back to the
  /// legacy pair so hand-written test contexts keep working.
  virtual void post(ProcessId to, MessagePtr inner) {
    send(to, inner->clone());
  }
  virtual void fanout(MessagePtr inner) { broadcast(*inner); }

  virtual TimerId setTimer(Tick delay) = 0;
  virtual void cancelTimer(TimerId id) noexcept = 0;
};

/// Detector role: adopt-commit (never returns vacillate) or
/// vacillate-adopt-commit. Contracts (paper §2):
///   Validity     — returned values are some process's input.
///   Termination  — result() becomes non-empty after finitely many steps.
///   Convergence  — unanimous input v  =>  everyone gets (commit, v).
///   Coherence over adopt & commit — someone got (commit, u) => everyone
///     got (commit, u) or (adopt, u).
///   Coherence over vacillate & adopt (VAC only) — nobody committed and
///     someone got (adopt, u) => everyone got (adopt, u) or (vacillate, *).
class AgreementDetector {
 public:
  AgreementDetector() = default;
  AgreementDetector(const AgreementDetector&) = delete;
  AgreementDetector& operator=(const AgreementDetector&) = delete;
  virtual ~AgreementDetector() = default;

  /// Starts the invocation with input `v`. Called exactly once.
  virtual void invoke(ObjectContext& ctx, Value v) = 0;

  /// Feeds a message addressed to this instance.
  virtual void onMessage(ObjectContext& ctx, ProcessId from,
                         const Message& inner) = 0;

  /// Lockstep tick barrier (synchronous objects only).
  virtual void onTick(ObjectContext& /*ctx*/, Tick /*tick*/) {}

  virtual void onTimer(ObjectContext& /*ctx*/, TimerId /*id*/) {}

  /// Non-empty once the invocation has returned.
  virtual std::optional<Outcome> result() const = 0;
};

/// Driver role: conciliator (probabilistic agreement: with probability > 0
/// all invokers return the same value) or reconciliator (weak agreement:
/// with probability 1, eventually all invokers of some round share a value
/// consistent with that round's adopt values).
class Driver {
 public:
  Driver() = default;
  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;
  virtual ~Driver() = default;

  /// Starts the invocation. `detected` is this process's outcome from the
  /// detect step of the same round (the template's (X, sigma)).
  virtual void invoke(ObjectContext& ctx, const Outcome& detected) = 0;

  virtual void onMessage(ObjectContext& ctx, ProcessId from,
                         const Message& inner) = 0;
  virtual void onTick(ObjectContext& /*ctx*/, Tick /*tick*/) {}
  virtual void onTimer(ObjectContext& /*ctx*/, TimerId /*id*/) {}

  virtual std::optional<Value> result() const = 0;
};

/// Factories instantiate the per-round, per-process object instances. The
/// round number is the template's phase argument `m` (1-based); objects like
/// Phase-King's conciliator derive the round's king from it.
using DetectorFactory =
    std::function<std::unique_ptr<AgreementDetector>(Round m)>;
using DriverFactory = std::function<std::unique_ptr<Driver>(Round m)>;

}  // namespace ooc

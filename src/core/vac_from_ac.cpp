#include "core/vac_from_ac.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace ooc {
namespace {

/// Inner envelope distinguishing messages of the two sub-ACs. The inner
/// payload is shared: cloning the envelope or buffering it adds a ref.
class SubMessage final : public MessageBase<SubMessage> {
 public:
  SubMessage(int index, MessagePtr inner)
      : index_(index), inner_(std::move(inner)) {}

  int index() const noexcept { return index_; }
  const Message& inner() const noexcept { return *inner_; }
  const MessagePtr& innerPtr() const noexcept { return inner_; }

  std::string describe() const override {
    return "ac" + std::to_string(index_) + ":" + inner_->describe();
  }

 private:
  int index_;
  MessagePtr inner_;
};

}  // namespace

/// Context handed to a sub-AC: wraps outbound messages in SubMessage so the
/// peer composite can route them to its matching sub-instance.
class VacFromTwoAc::SubContext final : public ObjectContext {
 public:
  SubContext(int index) noexcept : index_(index) {}

  void attach(ObjectContext& outer) noexcept { outer_ = &outer; }

  ProcessId self() const noexcept override { return outer_->self(); }
  std::size_t processCount() const noexcept override {
    return outer_->processCount();
  }
  Tick now() const noexcept override { return outer_->now(); }
  Rng& rng() noexcept override { return outer_->rng(); }

  void send(ProcessId to, std::unique_ptr<Message> inner) override {
    post(to, MessagePtr(std::move(inner)));
  }
  void broadcast(const Message& inner) override {
    fanout(MessagePtr(inner.clone()));
  }
  void post(ProcessId to, MessagePtr inner) override {
    outer_->post(to, makeMessage<SubMessage>(index_, std::move(inner)));
  }
  void fanout(MessagePtr inner) override {
    outer_->fanout(makeMessage<SubMessage>(index_, std::move(inner)));
  }
  TimerId setTimer(Tick delay) override { return outer_->setTimer(delay); }
  void cancelTimer(TimerId id) noexcept override { outer_->cancelTimer(id); }

 private:
  int index_;
  ObjectContext* outer_ = nullptr;
};

VacFromTwoAc::VacFromTwoAc(std::unique_ptr<AgreementDetector> first,
                           std::unique_ptr<AgreementDetector> second)
    : first_(std::move(first)), second_(std::move(second)) {
  if (!first_ || !second_)
    throw std::invalid_argument("both AC instances are required");
  subContext0_ = std::make_unique<SubContext>(0);
  subContext1_ = std::make_unique<SubContext>(1);
}

VacFromTwoAc::~VacFromTwoAc() = default;

void VacFromTwoAc::invoke(ObjectContext& ctx, Value v) {
  subContext0_->attach(ctx);
  subContext1_->attach(ctx);
  first_->invoke(*subContext0_, v);
  advance(ctx);
}

void VacFromTwoAc::onMessage(ObjectContext& ctx, ProcessId from,
                             const Message& inner) {
  const auto* sub = inner.as<SubMessage>();
  if (sub == nullptr) return;  // foreign payload; ignore
  if (sub->index() == 0) {
    // Messages for AC1 after it finished locally are stale (our AC1 already
    // returned; the object no longer needs them).
    if (phase_ == 0) first_->onMessage(*subContext0_, from, sub->inner());
  } else {
    if (phase_ == 1) {
      second_->onMessage(*subContext1_, from, sub->inner());
    } else {
      // A faster peer is already in AC2; hold its message until we get
      // there — sharing the payload with the envelope, no copy.
      bufferedForSecond_.push_back(Buffered{from, sub->innerPtr()});
    }
  }
  advance(ctx);
}

void VacFromTwoAc::onTick(ObjectContext& ctx, Tick tick) {
  active().onTick(phase_ == 0 ? *subContext0_ : *subContext1_, tick);
  advance(ctx);
}

void VacFromTwoAc::onTimer(ObjectContext& ctx, TimerId id) {
  active().onTimer(phase_ == 0 ? *subContext0_ : *subContext1_, id);
  advance(ctx);
}

void VacFromTwoAc::advance(ObjectContext&) {
  if (final_) return;
  if (phase_ == 0) {
    const auto outcome = first_->result();
    if (!outcome) return;
    if (outcome->confidence == Confidence::kVacillate)
      throw std::logic_error("VacFromTwoAc requires genuine AC objects");
    firstOutcome_ = *outcome;
    phase_ = 1;
    second_->invoke(*subContext1_, outcome->value);
    for (auto& held : bufferedForSecond_)
      second_->onMessage(*subContext1_, held.from, *held.inner);
    bufferedForSecond_.clear();
  }
  if (phase_ == 1) {
    const auto outcome = second_->result();
    if (!outcome) return;
    if (outcome->confidence == Confidence::kVacillate)
      throw std::logic_error("VacFromTwoAc requires genuine AC objects");
    Confidence level = Confidence::kVacillate;
    if (outcome->confidence == Confidence::kCommit) {
      level = firstOutcome_->confidence == Confidence::kCommit
                  ? Confidence::kCommit
                  : Confidence::kAdopt;
    }
    final_ = Outcome{level, outcome->value};
  }
}

std::optional<Outcome> VacFromTwoAc::result() const { return final_; }

DetectorFactory VacFromTwoAc::liftFactory(DetectorFactory acFactory) {
  return [acFactory = std::move(acFactory)](Round m) {
    // Give the two sub-ACs distinct round identities so any round-derived
    // internals (e.g. rotating roles) differ; routing is by SubMessage index,
    // not by these numbers.
    return std::make_unique<VacFromTwoAc>(acFactory(2 * m - 1),
                                          acFactory(2 * m));
  };
}

AcFromVac::AcFromVac(std::unique_ptr<AgreementDetector> vac)
    : vac_(std::move(vac)) {
  if (!vac_) throw std::invalid_argument("VAC instance is required");
}

std::optional<Outcome> AcFromVac::result() const {
  auto outcome = vac_->result();
  if (outcome && outcome->confidence == Confidence::kVacillate)
    outcome->confidence = Confidence::kAdopt;
  return outcome;
}

DetectorFactory AcFromVac::liftFactory(DetectorFactory vacFactory) {
  return [vacFactory = std::move(vacFactory)](Round m) {
    return std::make_unique<AcFromVac>(vacFactory(m));
  };
}

}  // namespace ooc

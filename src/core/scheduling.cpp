#include "core/scheduling.hpp"

#include <stdexcept>

namespace ooc {

namespace {

class LockstepScheduler final : public RoundScheduler {
 public:
  SchedulingPolicy policy() const noexcept override {
    return SchedulingPolicy::kLockstep;
  }
  bool advancesInline() const noexcept override { return true; }
  bool detachesCourtesyDrives() const noexcept override { return false; }
  bool forwardsTickBarrier() const noexcept override { return true; }
};

class EventDrivenScheduler final : public RoundScheduler {
 public:
  SchedulingPolicy policy() const noexcept override {
    return SchedulingPolicy::kEventDriven;
  }
  bool advancesInline() const noexcept override { return false; }
  bool detachesCourtesyDrives() const noexcept override { return false; }
  bool forwardsTickBarrier() const noexcept override { return false; }
};

class OooDriverScheduler final : public RoundScheduler {
 public:
  SchedulingPolicy policy() const noexcept override {
    return SchedulingPolicy::kOooDriver;
  }
  bool advancesInline() const noexcept override { return true; }
  bool detachesCourtesyDrives() const noexcept override { return true; }
  bool forwardsTickBarrier() const noexcept override { return true; }
};

}  // namespace

const char* toString(SchedulingPolicy policy) noexcept {
  switch (policy) {
    case SchedulingPolicy::kLockstep: return "lockstep";
    case SchedulingPolicy::kEventDriven: return "event-driven";
    case SchedulingPolicy::kOooDriver: return "ooo-driver";
  }
  return "?";
}

std::optional<SchedulingPolicy> parseSchedulingPolicy(
    const std::string& name) noexcept {
  if (name == "lockstep") return SchedulingPolicy::kLockstep;
  if (name == "event-driven") return SchedulingPolicy::kEventDriven;
  if (name == "ooo-driver") return SchedulingPolicy::kOooDriver;
  return std::nullopt;
}

std::unique_ptr<RoundScheduler> makeRoundScheduler(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kLockstep:
      return std::make_unique<LockstepScheduler>();
    case SchedulingPolicy::kEventDriven:
      return std::make_unique<EventDrivenScheduler>();
    case SchedulingPolicy::kOooDriver:
      return std::make_unique<OooDriverScheduler>();
  }
  throw std::invalid_argument("unknown scheduling policy");
}

}  // namespace ooc

#include "core/properties.hpp"

#include <algorithm>

namespace ooc {

RoundAudit auditRound(const std::vector<Value>& inputs,
                      const std::vector<std::optional<Outcome>>& outcomes,
                      const AuditOptions& options) {
  RoundAudit audit;

  // Classify.
  std::optional<Value> commitValue;
  std::optional<Value> adoptValue;
  for (const auto& outcome : outcomes) {
    if (!outcome) continue;
    switch (outcome->confidence) {
      case Confidence::kCommit:
        audit.anyCommit = true;
        if (!commitValue) commitValue = outcome->value;
        break;
      case Confidence::kAdopt:
        audit.anyAdopt = true;
        if (!adoptValue) adoptValue = outcome->value;
        break;
      case Confidence::kVacillate:
        audit.anyVacillate = true;
        break;
    }
  }

  // Validity: every returned value is someone's input.
  for (const auto& outcome : outcomes) {
    if (!outcome) continue;
    if (outcome->confidence == Confidence::kAdopt &&
        !options.requireAdoptValidity) {
      continue;
    }
    if (outcome->confidence == Confidence::kVacillate &&
        !options.requireVacillateValidity) {
      continue;
    }
    if (std::find(inputs.begin(), inputs.end(), outcome->value) ==
        inputs.end()) {
      audit.validity = false;
    }
  }

  // Convergence: unanimous inputs force unanimous commits.
  const bool unanimous =
      !inputs.empty() &&
      std::all_of(inputs.begin(), inputs.end(),
                  [&](Value v) { return v == inputs.front(); });
  if (unanimous) {
    for (const auto& outcome : outcomes) {
      if (!outcome) continue;
      if (outcome->confidence != Confidence::kCommit ||
          outcome->value != inputs.front()) {
        audit.convergence = false;
      }
    }
  }

  // Coherence over adopt & commit.
  if (commitValue) {
    for (const auto& outcome : outcomes) {
      if (!outcome) continue;
      if (outcome->confidence == Confidence::kVacillate ||
          outcome->value != *commitValue) {
        audit.coherenceAdoptCommit = false;
      }
    }
  }

  // Coherence over vacillate & adopt.
  if (options.checkVacillateAdoptCoherence && !commitValue && adoptValue) {
    for (const auto& outcome : outcomes) {
      if (!outcome) continue;
      if (outcome->confidence == Confidence::kAdopt &&
          outcome->value != *adoptValue) {
        audit.coherenceVacillateAdopt = false;
      }
    }
  }

  return audit;
}

RoundView collectRound(const std::vector<const ConsensusProcess*>& processes,
                       Round m) {
  RoundView view;
  for (const ConsensusProcess* process : processes) {
    const auto& rounds = process->rounds();
    if (m == 0 || rounds.size() < m) continue;  // never started round m
    const RoundRecord& record = rounds[m - 1];
    view.inputs.push_back(record.detectorInput);
    view.outcomes.push_back(record.detectorOutcome);
  }
  return view;
}

Round maxRoundStarted(
    const std::vector<const ConsensusProcess*>& processes) {
  Round highest = 0;
  for (const ConsensusProcess* process : processes)
    highest = std::max(highest, static_cast<Round>(process->rounds().size()));
  return highest;
}

std::vector<RoundAudit> auditAllRounds(
    const std::vector<const ConsensusProcess*>& processes,
    const AuditOptions& options) {
  std::vector<RoundAudit> audits;
  const Round highest = maxRoundStarted(processes);
  for (Round m = 1; m <= highest; ++m) {
    const RoundView view = collectRound(processes, m);
    audits.push_back(auditRound(view.inputs, view.outcomes, options));
  }
  return audits;
}

}  // namespace ooc

// Pluggable invariant monitors, evaluated against every explored run. Each
// monitor inspects the family-independent RunReport (and may look at the
// configuration, e.g. to skip checks a family cannot support) and returns a
// violation with a human-readable detail string, or nothing.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/scenario.hpp"

namespace ooc::check {

struct Violation {
  std::string invariant;  // name() of the monitor that fired
  std::string detail;
};

class Invariant {
 public:
  Invariant() = default;
  Invariant(const Invariant&) = delete;
  Invariant& operator=(const Invariant&) = delete;
  virtual ~Invariant() = default;

  virtual const char* name() const noexcept = 0;
  virtual std::optional<Violation> check(const Scenario& scenario,
                                         const RunReport& report) const = 0;
};

/// No two correct processes decide differently (the simulator's online
/// agreement monitor).
class AgreementInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "agreement"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// Every decision is some correct process's input.
class ValidityInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "validity"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// Per-round VAC/AC object-contract audits: validity, convergence, and the
/// two coherence properties of paper §2, per completed round.
class CoherenceAuditInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "coherence-audit"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// Every correct process decides before the run's tick/round caps.
class TerminationInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "termination"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// Raft confidence instrumentation: commit never precedes adopt-level
/// evidence, and all commit-level values agree (paper Algorithms 10-11).
class RaftConfidenceInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "raft-confidence"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// No vote amnesia: a restarted Raft process must never grant one term's
/// vote to two different candidates across its incarnations — the classic
/// lost-durable-state failure that seeds split brain. Ground truth comes
/// from an audit trail that survives restarts, not from recovered state.
class VoteAmnesiaInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "no-vote-amnesia"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// No committed-entry regression: a process that applied/learned a
/// committed value must never observe a different one after a restart.
class CommitRegressionInvariant final : public Invariant {
 public:
  const char* name() const noexcept override {
    return "no-commit-regression";
  }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// FD strong completeness: at the audit horizon, every correct process
/// suspects every terminally-crashed process. Vacuous for runs without an
/// oracle.
class FdCompletenessInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "fd-completeness"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// FD accuracy: P never suspects a not-yet-failed process; ◇S/Ω never
/// suspect a correct process after their advertised stabilization bound.
/// Catches the lying oracle (oracle-lie), whose advertised bound precedes
/// its actual noise window.
class FdAccuracyInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "fd-accuracy"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// Ω convergence: from the stabilization bound on, all correct processes
/// trust one common correct leader — and the bound itself lands inside
/// the run's tick budget. A deliberately-slow oracle (stabilize-at past
/// max-ticks) fails here: the liveness counterexample.
class FdConvergenceInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "fd-convergence"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// Service prefix agreement: any two nodes' applied logs (and decree
/// logs, for decree-based engines) agree on their common prefix — the
/// multi-decree generalization of per-instance agreement. Svc family only.
class SvcPrefixInvariant final : public Invariant {
 public:
  const char* name() const noexcept override {
    return "svc-prefix-agreement";
  }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// Service exactly-once commit: no client command is applied twice at any
/// node and no batch wins two decrees (a batch is re-proposed only after
/// it provably lost). Svc family only.
class SvcExactlyOnceInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "svc-exactly-once"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// Scheduler coherence: each round-scheduling policy's structural
/// signature holds (DESIGN.md §14). Lockstep runs produce no overlap
/// witnesses and no deferred activations (the frontier advances inline
/// behind the tick barrier); event-driven runs never overlap rounds (they
/// defer, but the frontier is still sequential); ooo-driver runs never
/// defer (activation is inline — overlap comes from detached drives).
/// A count on the wrong side is a RoundScheduler regression.
class SchedulerCoherenceInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "scheduler-coherence"; }
  std::optional<Violation> check(const Scenario& scenario,
                                 const RunReport& report) const override;
};

/// §5 witness hunter: fires when a run contains a completed adopt-level
/// outcome whose value differs from the run's decision — a schedule proving
/// that "decide on adopt" would have broken agreement. This is not a bug in
/// the implementation (the checker's healthy sweeps exclude it); it is used
/// in witness-hunt mode to *find* the paper's AC-insufficiency schedules.
class AdoptWitnessInvariant final : public Invariant {
 public:
  const char* name() const noexcept override { return "adopt-witness"; }
  std::optional<Violation> check(const Scenario&,
                                 const RunReport& report) const override;
};

/// The standard safety suite: agreement, validity, coherence audits, Raft
/// confidence, the crash-recovery durability monitors (vote amnesia,
/// committed-entry regression), the FD-axiom monitors (completeness,
/// accuracy always; convergence only with requireTermination, since it is
/// the oracle's liveness promise), the service-log monitors (prefix
/// agreement, exactly-once commit), the scheduler-coherence monitor, and
/// (optionally) termination.
std::vector<std::unique_ptr<Invariant>> safetySuite(
    bool requireTermination = true);

/// Non-owning view helper for APIs taking `const Invariant*` lists.
std::vector<const Invariant*> view(
    const std::vector<std::unique_ptr<Invariant>>& suite);

}  // namespace ooc::check

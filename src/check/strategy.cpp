#include "check/strategy.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "compose/registry.hpp"
#include "util/rng.hpp"

namespace ooc::check {
namespace {

std::vector<Value> randomBinaryInputs(std::size_t n, Rng& meta) {
  std::vector<Value> inputs(n);
  for (auto& v : inputs) v = meta.coin();
  return inputs;
}

std::vector<std::pair<ProcessId, Tick>> randomCrashes(std::size_t n,
                                                      std::size_t budget,
                                                      Tick tickMax,
                                                      Rng& meta) {
  std::vector<std::pair<ProcessId, Tick>> crashes;
  const std::size_t count = budget == 0 ? 0 : meta.below(budget + 1);
  for (std::size_t k = 0; k < count; ++k) {
    crashes.emplace_back(static_cast<ProcessId>(meta.below(n)),
                         static_cast<Tick>(1 + meta.below(tickMax)));
  }
  return crashes;
}

}  // namespace

// ---------------------------------------------------------------------------
// RandomWalkStrategy

RandomWalkStrategy::RandomWalkStrategy(Scenario base, Options options)
    : base_(std::move(base)), options_(options) {}

Scenario RandomWalkStrategy::generate(std::size_t index) const {
  Scenario scenario = base_;
  scenario.setSeed(options_.seedBase + index);
  // The meta stream drives configuration shape only; the run seed above
  // drives the protocol's own randomness.
  Rng meta = Rng(options_.seedBase).split(0x3A7E0000 + index);

  const auto pickCount = [&]() {
    const std::size_t lo = std::max<std::size_t>(1, options_.minProcesses);
    const std::size_t hi = std::max(lo, options_.maxProcesses);
    return lo + meta.below(hi - lo + 1);
  };

  switch (scenario.family) {
    case Family::kBenOr: {
      auto& config = scenario.benOr;
      if (options_.randomizeCrashes || options_.randomizeInputs) {
        config.n = pickCount();
        config.t.reset();  // recompute the default budget for the new n
      }
      if (options_.randomizeInputs) {
        config.inputs = randomBinaryInputs(config.n, meta);
      } else if (config.inputs.size() != config.n) {
        config.inputs.resize(config.n);
        for (std::size_t i = 0; i < config.n; ++i)
          config.inputs[i] = static_cast<Value>(i % 2);
      }
      if (options_.randomizeCrashes) {
        config.crashes = randomCrashes(config.n, (config.n - 1) / 2,
                                       options_.crashTickMax, meta);
      }
      if (options_.randomizeDelays)
        config.maxDelay = config.minDelay + meta.below(30);
      break;
    }
    case Family::kPhaseKing: {
      auto& config = scenario.phaseKing;
      const std::size_t t =
          config.t.value_or(config.n == 0 ? 0 : (config.n - 1) / 3);
      if (options_.randomizeCrashes)  // fault-schedule freedom: the attackers
        config.byzantineCount = meta.below(t + 1);
      config.strategy =
          static_cast<phaseking::ByzantineStrategy>(meta.below(5));
      config.placement =
          static_cast<harness::PhaseKingConfig::Placement>(meta.below(3));
      if (options_.randomizeInputs)
        config.inputs = randomBinaryInputs(
            config.n - config.byzantineCount, meta);
      break;
    }
    case Family::kRaft: {
      auto& config = scenario.raft;
      if (options_.randomizeCrashes || options_.randomizeInputs)
        config.n = pickCount();
      if (options_.randomizeInputs)
        config.inputs = randomBinaryInputs(config.n, meta);
      else
        config.inputs.clear();  // harness default: id % 2
      if (options_.randomizeCrashes) {
        config.crashes = randomCrashes(config.n, (config.n - 1) / 2,
                                       options_.crashTickMax, meta);
      }
      if (options_.randomizeDelays)
        config.maxDelay = config.minDelay + meta.below(8);
      break;
    }
    case Family::kCompose:
    case Family::kFd: {
      auto& config = scenario.compose;
      const auto& capability =
          compose::registry().detector(config.detector).capability;
      const bool lockstep =
          capability.mode == compose::InvocationMode::kLockstep;
      if (capability.faultModel == compose::FaultModel::kCrash) {
        if (options_.randomizeCrashes || options_.randomizeInputs) {
          config.n = pickCount();
          config.t.reset();  // recompute the default budget for the new n
        }
        if (options_.randomizeCrashes) {
          config.crashes = randomCrashes(
              config.n, (config.n - 1) / capability.tDivisor,
              options_.crashTickMax, meta);
        }
      } else if (options_.randomizeCrashes) {
        // Fault-schedule freedom for Byzantine detectors: vary the planted
        // count (within the tolerance) and where the attackers sit.
        const std::size_t t = config.t.value_or(
            config.n == 0 ? 0 : (config.n - 1) / capability.tDivisor);
        config.byzantineCount = meta.below(t + 1);
        config.placement = static_cast<compose::Placement>(meta.below(3));
      }
      if (options_.randomizeInputs)
        config.inputs =
            randomBinaryInputs(config.n - config.byzantineCount, meta);
      if (options_.randomizeDelays && !lockstep)
        config.maxDelay = config.minDelay + meta.below(30);
      break;
    }
    case Family::kSvc: {
      auto& config = scenario.svc;
      if (options_.randomizeCrashes) {
        config.crashes = randomCrashes(config.n, (config.n - 1) / 2,
                                       options_.crashTickMax, meta);
      }
      if (options_.randomizeInputs) {
        // The service has no input vector; the configuration freedom the
        // walk explores instead is the pipeline shape.
        config.service.window = 1 + meta.below(4);
        config.service.batchMax = 1 + meta.below(6);
      }
      if (options_.randomizeDelays)
        config.maxDelay = config.minDelay + meta.below(12);
      break;
    }
  }
  return scenario;
}

// ---------------------------------------------------------------------------
// DelayBoundStrategy

DelayBoundStrategy::DelayBoundStrategy(Scenario base, Options options)
    : base_(std::move(base)), options_(std::move(options)) {
  if (base_.family == Family::kPhaseKing ||
      ((base_.family == Family::kCompose || base_.family == Family::kFd) &&
       compose::registry().detector(base_.compose.detector).capability.mode ==
           compose::InvocationMode::kLockstep))
    throw std::invalid_argument(
        "delay-bound exploration needs an asynchronous family");
  if (options_.budgets.empty() || options_.adversarySeedsPerBudget == 0)
    throw std::invalid_argument("delay-bound strategy needs a non-empty grid");
}

Scenario DelayBoundStrategy::generate(std::size_t index) const {
  Scenario scenario = base_;
  harness::AdversaryOptions adversary;
  adversary.extraDelayMax =
      options_.budgets[index / options_.adversarySeedsPerBudget];
  adversary.seed = options_.adversarySeedBase +
                   index % options_.adversarySeedsPerBudget;
  adversary.perturbProbability = options_.perturbProbability;
  if (scenario.family == Family::kBenOr)
    scenario.benOr.adversary = adversary;
  else if (scenario.family == Family::kCompose ||
           scenario.family == Family::kFd)
    scenario.compose.adversary = adversary;
  else if (scenario.family == Family::kSvc)
    scenario.svc.adversary = adversary;
  else
    scenario.raft.adversary = adversary;
  return scenario;
}

// ---------------------------------------------------------------------------
// CrashScheduleStrategy

CrashScheduleStrategy::CrashScheduleStrategy(Scenario base, Options options)
    : base_(std::move(base)), options_(std::move(options)) {
  if (base_.family == Family::kPhaseKing ||
      ((base_.family == Family::kCompose || base_.family == Family::kFd) &&
       compose::registry()
               .detector(base_.compose.detector)
               .capability.faultModel == compose::FaultModel::kByzantine))
    throw std::invalid_argument(
        "crash-schedule enumeration applies to crash-fault families");
  if (options_.tickGrid.empty())
    throw std::invalid_argument("crash-schedule strategy needs a tick grid");

  const std::size_t n = base_.processCount();
  std::size_t budget = options_.maxCrashes;
  if (budget == 0) budget = n == 0 ? 0 : (n - 1) / 2;
  budget = std::min(budget, n);

  // Subsets in size order, lexicographic within a size.
  std::vector<ProcessId> current;
  const auto emit = [&](auto&& self, std::size_t firstId,
                        std::size_t remaining) -> void {
    if (remaining == 0) {
      subsets_.push_back(current);
      return;
    }
    for (std::size_t id = firstId; id + remaining <= n; ++id) {
      current.push_back(static_cast<ProcessId>(id));
      self(self, id + 1, remaining - 1);
      current.pop_back();
    }
  };
  for (std::size_t size = 0; size <= budget; ++size) emit(emit, 0, size);

  subsetStart_.reserve(subsets_.size());
  for (const auto& subset : subsets_) {
    subsetStart_.push_back(total_);
    std::size_t assignments = 1;
    for (std::size_t k = 0; k < subset.size(); ++k)
      assignments *= options_.tickGrid.size();
    total_ += assignments;
  }
}

Scenario CrashScheduleStrategy::generate(std::size_t index) const {
  // Find the subset owning this index (last start <= index).
  const auto it = std::upper_bound(subsetStart_.begin(), subsetStart_.end(),
                                   index);
  const std::size_t subsetIndex =
      static_cast<std::size_t>(it - subsetStart_.begin()) - 1;
  const std::vector<ProcessId>& subset = subsets_[subsetIndex];
  std::size_t offset = index - subsetStart_[subsetIndex];

  std::vector<std::pair<ProcessId, Tick>> crashes;
  crashes.reserve(subset.size());
  for (const ProcessId id : subset) {
    const std::size_t digit = offset % options_.tickGrid.size();
    offset /= options_.tickGrid.size();
    crashes.emplace_back(id, options_.tickGrid[digit]);
  }

  Scenario scenario = base_;
  if (scenario.family == Family::kBenOr)
    scenario.benOr.crashes = std::move(crashes);
  else if (scenario.family == Family::kCompose ||
           scenario.family == Family::kFd)
    scenario.compose.crashes = std::move(crashes);
  else if (scenario.family == Family::kSvc)
    scenario.svc.crashes = std::move(crashes);
  else
    scenario.raft.crashes = std::move(crashes);
  return scenario;
}

// ---------------------------------------------------------------------------
// RestartScheduleStrategy

RestartScheduleStrategy::RestartScheduleStrategy(Scenario base,
                                                 Options options)
    : base_(std::move(base)), options_(std::move(options)) {
  if (base_.family != Family::kRaft)
    throw std::invalid_argument(
        "restart-schedule enumeration needs the raft family");
  if (options_.crashTicks.empty() || options_.downtimes.empty() ||
      options_.seedsPerSchedule == 0)
    throw std::invalid_argument("restart-schedule strategy needs a grid");

  const std::size_t n = base_.processCount();
  const std::size_t budget = std::min(options_.maxRestarts, n);

  std::vector<ProcessId> current;
  const auto emit = [&](auto&& self, std::size_t firstId,
                        std::size_t remaining) -> void {
    if (remaining == 0) {
      subsets_.push_back(current);
      return;
    }
    for (std::size_t id = firstId; id + remaining <= n; ++id) {
      current.push_back(static_cast<ProcessId>(id));
      self(self, id + 1, remaining - 1);
      current.pop_back();
    }
  };
  for (std::size_t size = 0; size <= budget; ++size) emit(emit, 0, size);

  const std::size_t grid =
      options_.crashTicks.size() * options_.downtimes.size();
  subsetStart_.reserve(subsets_.size());
  for (const auto& subset : subsets_) {
    subsetStart_.push_back(total_);
    std::size_t assignments = options_.seedsPerSchedule;
    for (std::size_t k = 0; k < subset.size(); ++k) assignments *= grid;
    total_ += assignments;
  }
}

Scenario RestartScheduleStrategy::generate(std::size_t index) const {
  const auto it = std::upper_bound(subsetStart_.begin(), subsetStart_.end(),
                                   index);
  const std::size_t subsetIndex =
      static_cast<std::size_t>(it - subsetStart_.begin()) - 1;
  const std::vector<ProcessId>& subset = subsets_[subsetIndex];
  std::size_t offset = index - subsetStart_[subsetIndex];

  const std::size_t seedOffset = offset % options_.seedsPerSchedule;
  offset /= options_.seedsPerSchedule;

  std::vector<harness::RaftScenarioConfig::RestartEvent> restarts;
  restarts.reserve(subset.size());
  for (const ProcessId id : subset) {
    std::size_t digit = offset % options_.crashTicks.size();
    offset /= options_.crashTicks.size();
    const Tick at = options_.crashTicks[digit];
    digit = offset % options_.downtimes.size();
    offset /= options_.downtimes.size();
    restarts.push_back({id, at, options_.downtimes[digit]});
  }

  Scenario scenario = base_;
  scenario.raft.restarts = std::move(restarts);
  scenario.raft.dropProbability =
      std::max(scenario.raft.dropProbability, options_.dropProbability);
  scenario.setSeed(options_.seedBase + seedOffset);
  return scenario;
}

// ---------------------------------------------------------------------------
// OracleQualityStrategy

OracleQualityStrategy::OracleQualityStrategy(Scenario base, Options options)
    : base_(std::move(base)), options_(std::move(options)) {
  if (base_.family != Family::kFd && base_.family != Family::kCompose)
    throw std::invalid_argument(
        "oracle-quality exploration needs the fd (or compose) family");
  const auto& registry = compose::registry();
  if (registry.driver(base_.compose.driver).capability.oracle ==
      compose::OracleRequirement::kNone)
    throw std::invalid_argument(
        "oracle-quality exploration needs an oracle-consuming driver "
        "(ct-coordinator, p-coordinator)");
  if (options_.oracles.empty() || options_.stabilizeTicks.empty() ||
      options_.noises.empty() || options_.completenessLags.empty() ||
      options_.crashSchedules.empty() || options_.seedsPerCell == 0)
    throw std::invalid_argument("oracle-quality strategy needs a grid");

  for (const std::string& oracle : options_.oracles) {
    for (const Tick stabilizeAt : options_.stabilizeTicks) {
      for (const double noise : options_.noises) {
        for (const Tick lag : options_.completenessLags) {
          fd::OracleKnobs knobs;
          knobs.completenessLag = lag;
          knobs.stabilizeAt = stabilizeAt;
          knobs.noise = noise;
          // Quality points the registry rejects (noisy perfect-p; any
          // oracle below the driver's requirement) are not algorithms to
          // sweep — drop them here so every enumerated index runs.
          if (registry.validateOracle(base_.compose.driver, oracle, knobs))
            continue;
          for (std::size_t s = 0; s < options_.crashSchedules.size(); ++s)
            cells_.push_back({oracle, knobs, s});
        }
      }
    }
  }
  if (cells_.empty())
    throw std::invalid_argument(
        "oracle-quality grid is empty after registry validation");
}

Scenario OracleQualityStrategy::generate(std::size_t index) const {
  const Cell& cell = cells_[index / options_.seedsPerCell];
  Scenario scenario = base_;
  scenario.compose.oracle = cell.oracle;
  scenario.compose.oracleKnobs = cell.knobs;
  scenario.compose.crashes = options_.crashSchedules[cell.crashSchedule];
  scenario.setSeed(options_.seedBase + index % options_.seedsPerCell);
  return scenario;
}

// ---------------------------------------------------------------------------
// RoundSkewStrategy

RoundSkewStrategy::RoundSkewStrategy(Scenario base, Options options)
    : base_(std::move(base)), options_(std::move(options)) {
  if (base_.family != Family::kCompose && base_.family != Family::kFd)
    throw std::invalid_argument(
        "round-skew exploration needs the compose (or fd) family");
  if (options_.policies.empty() || options_.maxDelays.empty() ||
      options_.adversaryBudgets.empty() || options_.seedsPerCell == 0)
    throw std::invalid_argument("round-skew strategy needs a grid");

  const auto& registry = compose::registry();
  for (const std::string& name : options_.policies) {
    const auto policy = parseSchedulingPolicy(name);
    if (!policy)
      throw std::invalid_argument("round-skew: unknown scheduling policy '" +
                                  name + "'");
    // Policies the registry rejects for this pairing are not algorithms to
    // sweep — drop them here so every enumerated index runs.
    if (registry.validateScheduling(base_.compose.detector,
                                    base_.compose.driver, *policy))
      continue;
    for (const Tick maxDelay : options_.maxDelays)
      for (const Tick budget : options_.adversaryBudgets)
        cells_.push_back({*policy, maxDelay, budget});
  }
  if (cells_.empty())
    throw std::invalid_argument(
        "round-skew grid is empty after registry validation (the base "
        "pairing admits no swept scheduling policy)");
}

Scenario RoundSkewStrategy::generate(std::size_t index) const {
  const Cell& cell = cells_[index / options_.seedsPerCell];
  Scenario scenario = base_;
  scenario.compose.scheduler = cell.policy;
  scenario.compose.maxDelay =
      std::max(scenario.compose.minDelay, cell.maxDelay);
  if (cell.adversaryBudget > 0) {
    harness::AdversaryOptions adversary;
    adversary.extraDelayMax = cell.adversaryBudget;
    adversary.seed = options_.seedBase + index;
    scenario.compose.adversary = adversary;
  }
  scenario.setSeed(options_.seedBase + index % options_.seedsPerCell);
  return scenario;
}

// ---------------------------------------------------------------------------
// SvcPipelineStrategy

SvcPipelineStrategy::SvcPipelineStrategy(Scenario base, Options options)
    : base_(std::move(base)), options_(std::move(options)) {
  if (base_.family != Family::kSvc)
    throw std::invalid_argument(
        "svc-pipeline enumeration needs the svc family");
  if (options_.windows.empty() || options_.batchCaps.empty() ||
      options_.crashTicks.empty() || options_.downtimes.empty() ||
      options_.seedsPerCell == 0)
    throw std::invalid_argument("svc-pipeline strategy needs a grid");

  for (const std::uint64_t window : options_.windows) {
    for (const std::size_t batchMax : options_.batchCaps) {
      Cell cell;
      cell.window = window;
      cell.batchMax = batchMax;
      cells_.push_back(cell);  // the fault-free run
      for (const Tick at : options_.crashTicks) {
        cell.fault = Cell::Fault::kCrash;
        cell.at = at;
        cells_.push_back(cell);
        cell.fault = Cell::Fault::kRestart;
        for (const Tick downtime : options_.downtimes) {
          cell.downtime = downtime;
          cells_.push_back(cell);
        }
      }
    }
  }
}

Scenario SvcPipelineStrategy::generate(std::size_t index) const {
  const Cell& cell = cells_[index / options_.seedsPerCell];
  Scenario scenario = base_;
  auto& config = scenario.svc;
  config.service.window = cell.window;
  config.service.batchMax = cell.batchMax;
  config.crashes.clear();
  config.restarts.clear();
  // Fault the second node: node 0 stays the reference commit timeline.
  const ProcessId victim = config.n > 1 ? 1 : 0;
  switch (cell.fault) {
    case Cell::Fault::kNone: break;
    case Cell::Fault::kCrash:
      config.crashes.emplace_back(victim, cell.at);
      break;
    case Cell::Fault::kRestart:
      config.restarts.push_back({victim, cell.at, cell.downtime});
      // Restart cells exercise the journal + quarantine recovery path.
      config.service.durable = true;
      break;
  }
  scenario.setSeed(options_.seedBase + index % options_.seedsPerCell);
  return scenario;
}

// ---------------------------------------------------------------------------
// CompositeStrategy

CompositeStrategy::CompositeStrategy(
    std::string name, std::vector<std::unique_ptr<ExplorationStrategy>> parts)
    : name_(std::move(name)), parts_(std::move(parts)) {
  for (const auto& part : parts_) total_ += part->size();
}

Scenario CompositeStrategy::generate(std::size_t index) const {
  for (const auto& part : parts_) {
    if (index < part->size()) return part->generate(index);
    index -= part->size();
  }
  throw std::out_of_range("composite strategy index out of range");
}

}  // namespace ooc::check

#include "check/golden.hpp"

#include "check/replay.hpp"

namespace ooc::check {

std::vector<GoldenFixture> goldenFixtures() {
  std::vector<GoldenFixture> fixtures;

  {
    GoldenFixture f;
    f.name = "benor-async-n5";
    f.scenario.family = Family::kBenOr;
    f.scenario.benOr.n = 5;
    f.scenario.benOr.inputs = {0, 1, 0, 1, 1};
    f.scenario.benOr.seed = 7;
    f.scenario.benOr.mode = harness::BenOrConfig::Mode::kDecomposed;
    fixtures.push_back(std::move(f));
  }
  {
    GoldenFixture f;
    f.name = "benor-vacfromac-n5";
    f.scenario.family = Family::kBenOr;
    f.scenario.benOr.n = 5;
    f.scenario.benOr.inputs = {1, 0, 1, 0, 0};
    f.scenario.benOr.seed = 21;
    f.scenario.benOr.mode = harness::BenOrConfig::Mode::kVacFromTwoAc;
    fixtures.push_back(std::move(f));
  }
  {
    GoldenFixture f;
    f.name = "phaseking-lockstep-n7";
    f.scenario.family = Family::kPhaseKing;
    f.scenario.phaseKing.n = 7;
    f.scenario.phaseKing.byzantineCount = 2;
    f.scenario.phaseKing.seed = 11;
    fixtures.push_back(std::move(f));
  }
  {
    GoldenFixture f;
    f.name = "raft-faultmix-restart";
    f.scenario.family = Family::kRaft;
    f.scenario.raft.n = 5;
    f.scenario.raft.seed = 13;
    f.scenario.raft.dropProbability = 0.10;
    f.scenario.raft.duplicateProbability = 0.20;
    f.scenario.raft.restarts.push_back({1, 160, 20});
    fixtures.push_back(std::move(f));
  }
  {
    // A registry pairing with no legacy config spelling: the timer
    // reconciliator only exists as a composition.
    GoldenFixture f;
    f.name = "compose-timer-n5";
    f.scenario.family = Family::kCompose;
    f.scenario.compose.detector = "benor-vac";
    f.scenario.compose.driver = "timer";
    f.scenario.compose.n = 5;
    f.scenario.compose.inputs = {0, 1, 0, 1, 1};
    f.scenario.compose.seed = 17;
    fixtures.push_back(std::move(f));
  }
  {
    // An oracle-guided pairing: rotating coordinator consuming Ω over a
    // crash schedule, with a deliberately imperfect oracle (noise until
    // stabilization) so the golden pins the noise hashing and the
    // suspicion-driven timer path, not just the happy claim path.
    GoldenFixture f;
    f.name = "fd-ct-omega-n5";
    f.scenario.family = Family::kFd;
    f.scenario.compose.detector = "benor-vac";
    f.scenario.compose.driver = "ct-coordinator";
    f.scenario.compose.oracle = "omega";
    f.scenario.compose.oracleKnobs.completenessLag = 6;
    f.scenario.compose.oracleKnobs.stabilizeAt = 60;
    f.scenario.compose.oracleKnobs.noise = 0.3;
    f.scenario.compose.n = 5;
    f.scenario.compose.inputs = {0, 1, 0, 1, 1};
    f.scenario.compose.crashes = {{4, 30}};
    f.scenario.compose.seed = 23;
    fixtures.push_back(std::move(f));
  }
  {
    // A schedule expressible only under a non-lockstep policy: the
    // ooo-driver scheduler detaches each round's courtesy drive, so
    // driver exchanges for round m interleave with the round-(m+1)
    // detector — the overlap the lockstep barrier forbids. The lottery
    // driver matters here: its drive wave needs a message from every
    // process, so a detached drive genuinely outlives the successor
    // round's detector (a local coin would resolve at launch and the
    // overlap would never reach the trace). This golden is the committed
    // witness for the roundless refactor (DESIGN.md §14); the six
    // fixtures above must stay byte-identical under lockstep.
    GoldenFixture f;
    f.name = "compose-ooo-skew-n5";
    f.scenario.family = Family::kCompose;
    f.scenario.compose.detector = "benor-vac";
    f.scenario.compose.driver = "lottery";
    f.scenario.compose.scheduler = SchedulingPolicy::kOooDriver;
    f.scenario.compose.n = 5;
    f.scenario.compose.inputs = {0, 1, 0, 1, 1};
    f.scenario.compose.maxDelay = 15;
    f.scenario.compose.seed = 14;
    fixtures.push_back(std::move(f));
  }
  return fixtures;
}

std::string renderGolden(const GoldenFixture& fixture) {
  CounterexampleFile file;
  file.scenario = fixture.scenario;
  file.invariant = "golden-fixture";
  file.detail = fixture.name;
  file.trace = recordRun(fixture.scenario).trace;
  return serializeCounterexample(file);
}

}  // namespace ooc::check

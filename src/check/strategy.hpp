// Exploration strategies: deterministic, indexable generators of scenario
// configurations. A strategy is a pure function index -> Scenario, so a
// sweep parallelizes trivially (workers pull indices from an atomic
// counter), any configuration can be regenerated from (strategy, index),
// and a finding's provenance is just its index.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "fd/oracle.hpp"

namespace ooc::check {

class ExplorationStrategy {
 public:
  ExplorationStrategy() = default;
  ExplorationStrategy(const ExplorationStrategy&) = delete;
  ExplorationStrategy& operator=(const ExplorationStrategy&) = delete;
  virtual ~ExplorationStrategy() = default;

  virtual const char* name() const noexcept = 0;
  /// Number of configurations this strategy enumerates.
  virtual std::size_t size() const noexcept = 0;
  /// The index-th configuration. Deterministic and thread-safe.
  virtual Scenario generate(std::size_t index) const = 0;
};

/// Multi-seed random walk: run `runs` configurations derived from a base
/// scenario, each with a fresh run seed and (optionally) randomized process
/// count, inputs, delay bounds and crash schedules drawn from a per-index
/// meta stream. The classic "thousands of seeds" sweep.
class RandomWalkStrategy final : public ExplorationStrategy {
 public:
  struct Options {
    std::uint64_t seedBase = 1;
    std::size_t runs = 1000;
    bool randomizeInputs = true;
    /// Ben-Or / Raft only (Phase-King faults are Byzantine, not crashes).
    bool randomizeCrashes = true;
    bool randomizeDelays = true;
    /// Ben-Or / Raft process-count range; Phase-King keeps the base n.
    std::size_t minProcesses = 3;
    std::size_t maxProcesses = 9;
    /// Crash ticks are drawn from [1, crashTickMax].
    Tick crashTickMax = 300;
  };

  RandomWalkStrategy(Scenario base, Options options);

  const char* name() const noexcept override { return "random-walk"; }
  std::size_t size() const noexcept override { return options_.runs; }
  Scenario generate(std::size_t index) const override;

 private:
  Scenario base_;
  Options options_;
};

/// Delay-bounded reordering: sweeps the message-reordering adversary over a
/// grid of delay budgets x adversary seeds while the protocol configuration
/// (including its run seed) stays fixed — systematic exploration of bounded
/// perturbations of one schedule. Asynchronous families only.
class DelayBoundStrategy final : public ExplorationStrategy {
 public:
  struct Options {
    std::vector<Tick> budgets = {1, 2, 4, 8, 16, 32};
    std::size_t adversarySeedsPerBudget = 50;
    std::uint64_t adversarySeedBase = 1;
    double perturbProbability = 1.0;
  };

  /// Throws std::invalid_argument for Phase-King (synchronous lockstep has
  /// no delay freedom to explore).
  DelayBoundStrategy(Scenario base, Options options);

  const char* name() const noexcept override { return "delay-bound"; }
  std::size_t size() const noexcept override {
    return options_.budgets.size() * options_.adversarySeedsPerBudget;
  }
  Scenario generate(std::size_t index) const override;

 private:
  Scenario base_;
  Options options_;
};

/// Targeted crash-schedule enumeration: every crash set of up to
/// `maxCrashes` distinct processes, each crashing at every combination of
/// ticks from `tickGrid` (plus the crash-free schedule). Ben-Or / Raft only.
class CrashScheduleStrategy final : public ExplorationStrategy {
 public:
  struct Options {
    /// Defaults to the family's fault budget: floor((n-1)/2) for Ben-Or,
    /// minority for Raft.
    std::size_t maxCrashes = 0;
    std::vector<Tick> tickGrid = {1, 5, 10, 25, 50, 100, 200};
  };

  /// Throws std::invalid_argument for Phase-King (its faults are Byzantine).
  CrashScheduleStrategy(Scenario base, Options options);

  const char* name() const noexcept override { return "crash-schedule"; }
  std::size_t size() const noexcept override { return total_; }
  Scenario generate(std::size_t index) const override;

 private:
  Scenario base_;
  Options options_;
  /// All enumerated crash sets (process-id subsets, size <= maxCrashes).
  std::vector<std::vector<ProcessId>> subsets_;
  /// subsetStart_[s] = first global index of subset s's tick assignments.
  std::vector<std::size_t> subsetStart_;
  std::size_t total_ = 0;
};

/// Targeted crash-restart enumeration for the durability surface: every
/// restart set of up to `maxRestarts` distinct processes (plus the
/// restart-free schedule), each member restarting at every combination of
/// (crash tick, downtime) from the grids, swept over `seedsPerSchedule` run
/// seeds. Raft only (the other families have no recovery path to exercise).
class RestartScheduleStrategy final : public ExplorationStrategy {
 public:
  struct Options {
    std::size_t maxRestarts = 1;
    /// Crash ticks sit around the first-election window so recovery races
    /// with vote grants and leadership handoff rather than hitting a
    /// settled cluster.
    std::vector<Tick> crashTicks = {150, 160, 170, 185, 200,
                                    220, 250, 280, 310, 350};
    /// Short downtimes keep the rejoin inside the term that was live at
    /// the crash — the window where recovered-but-stale state can act.
    std::vector<Tick> downtimes = {1, 20, 80};
    std::size_t seedsPerSchedule = 10;
    std::uint64_t seedBase = 1;
    /// Message loss stretches elections across multiple competing
    /// candidacies, which is what gives a forgotten vote a second
    /// same-term candidate to defect to.
    double dropProbability = 0.1;
  };

  /// Throws std::invalid_argument for non-Raft families or empty grids.
  RestartScheduleStrategy(Scenario base, Options options);

  const char* name() const noexcept override { return "restart-schedule"; }
  std::size_t size() const noexcept override { return total_; }
  Scenario generate(std::size_t index) const override;

 private:
  Scenario base_;
  Options options_;
  std::vector<std::vector<ProcessId>> subsets_;
  std::vector<std::size_t> subsetStart_;
  std::size_t total_ = 0;
};

/// Oracle-quality sweep for the fd family: every registered oracle ×
/// a grid of (stabilization time, false-suspicion noise, completeness
/// lag) quality points × a set of crash schedules × run seeds, on a fixed
/// oracle-consuming base composition. Cells the registry rejects (noisy
/// perfect-p, eventual-accuracy oracles under a P-requiring driver) are
/// skipped at construction — the sweep enumerates algorithms only; the
/// rejections themselves are covered by the E22 matrix and compose tests.
class OracleQualityStrategy final : public ExplorationStrategy {
 public:
  struct Options {
    std::vector<std::string> oracles = {"perfect-p", "diamond-s", "omega"};
    std::vector<Tick> stabilizeTicks = {0, 60, 200};
    std::vector<double> noises = {0.0, 0.3};
    std::vector<Tick> completenessLags = {2, 16};
    /// Crash schedules the oracle is laid over (empty = fault-free).
    std::vector<std::vector<std::pair<ProcessId, Tick>>> crashSchedules = {
        {}, {{1, 5}}, {{1, 40}}, {{1, 120}}, {{1, 40}, {3, 90}}};
    std::size_t seedsPerCell = 2;
    std::uint64_t seedBase = 1;
  };

  /// Throws std::invalid_argument unless the base scenario's driver
  /// consumes an oracle (the sweep would be vacuous otherwise).
  OracleQualityStrategy(Scenario base, Options options);

  const char* name() const noexcept override { return "oracle-quality"; }
  std::size_t size() const noexcept override {
    return cells_.size() * options_.seedsPerCell;
  }
  Scenario generate(std::size_t index) const override;

 private:
  struct Cell {
    std::string oracle;
    fd::OracleKnobs knobs;
    std::size_t crashSchedule = 0;  // index into options_.crashSchedules
  };

  Scenario base_;
  Options options_;
  std::vector<Cell> cells_;  // registry-valid cells only
};

/// Round-skew sweep for the compose/fd families: every round-scheduling
/// policy the registry admits for the base pairing × a grid of network
/// delay bounds × delay-adversary budgets × run seeds. The point is to
/// drive the per-process round frontiers apart — skewed schedules are
/// where lockstep-era assumptions (frontier-owned timers, barrier-paced
/// buffering) break — while the scheduler-coherence invariant pins each
/// policy's structural signature. Policies the registry rejects for the
/// pairing (lockstep-mode or skew-intolerant objects) are dropped at
/// construction, like OracleQualityStrategy's rejected quality points;
/// the rejections themselves are the E24 matrix's business.
class RoundSkewStrategy final : public ExplorationStrategy {
 public:
  struct Options {
    /// Wire names; unknown names throw, registry-rejected ones are skipped.
    std::vector<std::string> policies = {"lockstep", "event-driven",
                                         "ooo-driver"};
    std::vector<Tick> maxDelays = {4, 10, 25};
    /// Adversary budgets laid over each delay bound (0 = no adversary).
    std::vector<Tick> adversaryBudgets = {0, 8};
    std::size_t seedsPerCell = 4;
    std::uint64_t seedBase = 1;
  };

  /// Throws std::invalid_argument for non-compose families, async-hostile
  /// base pairings (every policy rejected) or an empty grid.
  RoundSkewStrategy(Scenario base, Options options);

  const char* name() const noexcept override { return "round-skew"; }
  std::size_t size() const noexcept override {
    return cells_.size() * options_.seedsPerCell;
  }
  Scenario generate(std::size_t index) const override;

 private:
  struct Cell {
    SchedulingPolicy policy = SchedulingPolicy::kLockstep;
    Tick maxDelay = 0;
    Tick adversaryBudget = 0;
  };

  Scenario base_;
  Options options_;
  std::vector<Cell> cells_;  // registry-valid cells only
};

/// Service-pipeline enumeration for the svc family: a grid of pipeline
/// windows × batch caps × fault schedules — the crash-free run, one
/// permanent crash per crash tick, and one crash-restart per (crash tick,
/// downtime) cell — swept over `seedsPerCell` run seeds. Restart cells
/// force the durable journal on: a volatile restart under the quarantine
/// discipline is a separate, deliberately weaker configuration that the
/// random walk covers. Svc only.
class SvcPipelineStrategy final : public ExplorationStrategy {
 public:
  struct Options {
    std::vector<std::uint64_t> windows = {1, 2, 4};
    std::vector<std::size_t> batchCaps = {1, 4};
    /// Early ticks race the fault against the first decrees; later ones
    /// hit a pipeline in flight.
    std::vector<Tick> crashTicks = {30, 120, 400};
    std::vector<Tick> downtimes = {40, 200};
    std::size_t seedsPerCell = 3;
    std::uint64_t seedBase = 1;
  };

  /// Throws std::invalid_argument for non-svc families or empty grids.
  SvcPipelineStrategy(Scenario base, Options options);

  const char* name() const noexcept override { return "svc-pipeline"; }
  std::size_t size() const noexcept override {
    return cells_.size() * options_.seedsPerCell;
  }
  Scenario generate(std::size_t index) const override;

 private:
  struct Cell {
    std::uint64_t window = 1;
    std::size_t batchMax = 1;
    enum class Fault { kNone, kCrash, kRestart } fault = Fault::kNone;
    Tick at = 0;
    Tick downtime = 0;
  };

  Scenario base_;
  Options options_;
  std::vector<Cell> cells_;
};

/// Concatenation of strategies (indices are assigned in order).
class CompositeStrategy final : public ExplorationStrategy {
 public:
  CompositeStrategy(std::string name,
                    std::vector<std::unique_ptr<ExplorationStrategy>> parts);

  const char* name() const noexcept override { return name_.c_str(); }
  std::size_t size() const noexcept override { return total_; }
  Scenario generate(std::size_t index) const override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<ExplorationStrategy>> parts_;
  std::size_t total_ = 0;
};

}  // namespace ooc::check

#include "check/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "check/scenario.hpp"
#include "core/properties.hpp"
#include "harness/serialize.hpp"

namespace ooc::check {
namespace {

// One rendered timeline entry. `seq` is a single global counter stamped
// across both event streams (scheduler events and protocol taps), so
// entries interleave exactly as they happened during the re-execution.
struct Entry {
  Tick at = 0;
  std::uint64_t seq = 0;
  ProcessId process = 0;
  /// Scheduler-level noise (deliveries, timers) — subject to the
  /// per-process cap; protocol entries and decisions always render.
  bool elidable = false;
  std::string text;
};

// Re-executes the scenario, collecting scheduler events (verified against
// the recorded trace) and protocol-level telemetry into one stream.
class TimelineCollector final : public ScheduleObserver,
                                public harness::TelemetrySink {
 public:
  explicit TimelineCollector(const Trace& expected) : verifier_(expected) {}

  void onEvent(const TraceEvent& event) override {
    verifier_.onEvent(event);
    Entry entry;
    entry.at = event.at;
    entry.seq = nextSeq_++;
    switch (event.kind) {
      case TraceEvent::Kind::kStart:
        entry.process = event.a;
        entry.text = "start";
        break;
      case TraceEvent::Kind::kDeliver: {
        entry.process = event.a;
        entry.elidable = true;
        entry.text = "deliver from p" + std::to_string(event.b);
        break;
      }
      case TraceEvent::Kind::kTimer:
        if (event.a == kNoTraceProcess) return;  // cancelled; never ran
        entry.process = event.a;
        entry.elidable = true;
        entry.text = "timer " + std::to_string(event.aux) + " fired";
        break;
      case TraceEvent::Kind::kDecision:
        entry.process = event.a;
        entry.text =
            "DECIDED " + std::to_string(static_cast<Value>(event.aux));
        break;
      case TraceEvent::Kind::kCrash:
        entry.process = event.a;
        entry.text = "CRASHED (incarnation " + std::to_string(event.aux) +
                     " down, volatile state lost)";
        break;
      case TraceEvent::Kind::kRestart:
        entry.process = event.a;
        entry.text =
            "RESTARTED (incarnation " + std::to_string(event.aux) + ")";
        break;
      case TraceEvent::Kind::kControl:
      case TraceEvent::Kind::kBarrier:
        return;  // no process lane
    }
    entries_.push_back(std::move(entry));
  }

  void onDetectorOutcome(ProcessId process, Round round,
                         const Outcome& outcome, Tick at) override {
    Entry entry;
    entry.at = at;
    entry.seq = nextSeq_++;
    entry.process = process;
    entry.text = "detect[" + std::to_string(round) + "] -> " +
                 toString(outcome.confidence) + "(" +
                 std::to_string(outcome.value) + ")";
    entries_.push_back(std::move(entry));
  }

  void onDriverValue(ProcessId process, Round round, Value value,
                     Tick at) override {
    Entry entry;
    entry.at = at;
    entry.seq = nextSeq_++;
    entry.process = process;
    entry.text =
        "drive[" + std::to_string(round) + "] -> " + std::to_string(value);
    entries_.push_back(std::move(entry));
  }

  void onOracleQuery(ProcessId viewer, ProcessId target, bool suspected,
                     Tick at) override {
    // Each coordinator query is scheduler-grade noise (elidable); the
    // *transitions* of the viewer's suspicion of the target are the
    // protocol-level story and always render.
    Entry entry;
    entry.at = at;
    entry.seq = nextSeq_++;
    entry.process = viewer;
    entry.elidable = true;
    entry.text = "oracle? p" + std::to_string(target) + " -> " +
                 (suspected ? "suspected" : "trusted");
    entries_.push_back(std::move(entry));

    bool& previous = suspicion_[{viewer, target}];  // trusted at start
    if (previous == suspected) return;
    previous = suspected;
    Entry transition;
    transition.at = at;
    transition.seq = nextSeq_++;
    transition.process = viewer;
    transition.text =
        suspected ? "ORACLE suspects p" + std::to_string(target)
                  : "ORACLE trusts p" + std::to_string(target) + " again";
    entries_.push_back(std::move(transition));
  }

  const std::vector<Entry>& entries() const noexcept { return entries_; }
  const TraceVerifier& verifier() const noexcept { return verifier_; }

 private:
  TraceVerifier verifier_;
  std::uint64_t nextSeq_ = 0;
  std::vector<Entry> entries_;
  /// Last suspected-state per (viewer, target), for transition entries.
  std::map<std::pair<ProcessId, ProcessId>, bool> suspicion_;
};

}  // namespace

std::string renderTimeline(const CounterexampleFile& file,
                           const TimelineOptions& options) {
  TimelineCollector collector(file.trace);
  harness::RunHooks hooks;
  hooks.observer = &collector;
  hooks.telemetry = &collector;
  runScenario(file.scenario, hooks);

  const std::string runId =
      file.runId.empty() ? harness::configRunId(serialize(file.scenario))
                         : file.runId;

  std::ostringstream os;
  os << "counterexample timeline  run-id=" << runId << "\n";
  os << "scenario:  " << describe(file.scenario) << "\n";
  os << "invariant: " << file.invariant << "\n";
  if (!file.detail.empty()) os << "detail:    " << file.detail << "\n";
  os << "replay:    "
     << (collector.verifier().ok()
             ? "bit-identical to recorded trace"
             : "DIVERGED from recorded trace (timeline reflects the "
               "re-execution)")
     << "\n";

  const std::size_t n = file.scenario.processCount();
  for (std::size_t p = 0; p < n; ++p) {
    os << "\np" << p << ":\n";
    // Entries arrive stamped in execution order; a stable partition by
    // process keeps that order inside each lane.
    std::vector<const Entry*> lane;
    for (const Entry& entry : collector.entries())
      if (entry.process == static_cast<ProcessId>(p)) lane.push_back(&entry);

    std::size_t elidableShown = 0;
    std::size_t elided = 0;
    for (const Entry* entry : lane) {
      if (entry->elidable && options.maxEventsPerProcess > 0 &&
          elidableShown >= options.maxEventsPerProcess) {
        ++elided;
        continue;
      }
      if (entry->elidable) {
        if (!options.showDeliveries &&
            entry->text.rfind("deliver", 0) == 0) {
          continue;
        }
        if (!options.showTimers && entry->text.rfind("timer", 0) == 0) {
          continue;
        }
        ++elidableShown;
      }
      os << "  t=" << entry->at << "\t" << entry->text << "\n";
    }
    if (elided > 0)
      os << "  ... (" << elided << " more scheduler events elided)\n";
  }
  return os.str();
}

}  // namespace ooc::check

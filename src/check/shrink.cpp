#include "check/shrink.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace ooc::check {
namespace {

bool allEqual(const std::vector<Value>& values) {
  return std::adjacent_find(values.begin(), values.end(),
                            std::not_equal_to<>()) == values.end();
}

void dropCrashesAbove(std::vector<std::pair<ProcessId, Tick>>& crashes,
                      std::size_t n) {
  std::erase_if(crashes,
                [n](const auto& crash) { return crash.first >= n; });
}

template <typename Config>
void eachCrashReduction(const Scenario& base, const Config& config,
                        Config Scenario::* member,
                        std::vector<Scenario>& out) {
  for (std::size_t i = 0; i < config.crashes.size(); ++i) {
    Scenario candidate = base;
    auto& crashes = (candidate.*member).crashes;
    crashes.erase(crashes.begin() + static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(candidate));
  }
  for (std::size_t i = 0; i < config.crashes.size(); ++i) {
    if (config.crashes[i].second <= 1) continue;
    Scenario candidate = base;
    auto& crash = (candidate.*member).crashes[i];
    crash.second = std::max<Tick>(1, crash.second / 2);
    out.push_back(std::move(candidate));
  }
}

void eachAdversaryReduction(const Scenario& base,
                            const harness::AdversaryOptions& adversary,
                            std::vector<Scenario>& out, Family family) {
  if (!adversary.enabled()) return;
  const auto set = [&](Tick budget) {
    Scenario candidate = base;
    auto& target = family == Family::kRaft ? candidate.raft.adversary
                   : family == Family::kSvc ? candidate.svc.adversary
                   : family == Family::kCompose || family == Family::kFd
                       ? candidate.compose.adversary
                       : candidate.benOr.adversary;
    target.extraDelayMax = budget;
    out.push_back(std::move(candidate));
  };
  set(0);
  if (adversary.extraDelayMax > 1) set(adversary.extraDelayMax / 2);
}

void eachInputSimplification(const Scenario& base,
                             const std::vector<Value>& inputs,
                             std::vector<Scenario>& out, Family family) {
  if (inputs.empty() || allEqual(inputs)) return;
  for (const Value v : {Value{0}, Value{1}}) {
    Scenario candidate = base;
    std::vector<Value>* target = nullptr;
    switch (family) {
      case Family::kBenOr: target = &candidate.benOr.inputs; break;
      case Family::kPhaseKing: target = &candidate.phaseKing.inputs; break;
      case Family::kRaft: target = &candidate.raft.inputs; break;
      case Family::kCompose:
      case Family::kFd: target = &candidate.compose.inputs; break;
      case Family::kSvc: return;  // the service has no input vector
    }
    std::fill(target->begin(), target->end(), v);
    out.push_back(std::move(candidate));
  }
}

/// All one-step reductions of `base`, most aggressive first.
std::vector<Scenario> reductions(const Scenario& base) {
  std::vector<Scenario> out;
  switch (base.family) {
    case Family::kBenOr: {
      const auto& config = base.benOr;
      eachCrashReduction(base, config, &Scenario::benOr, out);
      if (config.n > 3) {
        Scenario candidate = base;
        auto& c = candidate.benOr;
        --c.n;
        c.t.reset();
        c.inputs.resize(c.n);
        dropCrashesAbove(c.crashes, c.n);
        out.push_back(std::move(candidate));
      }
      if (config.maxDelay > config.minDelay) {
        Scenario candidate = base;
        candidate.benOr.maxDelay = config.minDelay;
        out.push_back(std::move(candidate));
        const Tick mid = (config.minDelay + config.maxDelay) / 2;
        if (mid != config.minDelay && mid != config.maxDelay) {
          candidate = base;
          candidate.benOr.maxDelay = mid;
          out.push_back(std::move(candidate));
        }
      }
      eachAdversaryReduction(base, config.adversary, out, Family::kBenOr);
      eachInputSimplification(base, config.inputs, out, Family::kBenOr);
      break;
    }
    case Family::kPhaseKing: {
      const auto& config = base.phaseKing;
      if (config.byzantineCount > 0) {
        Scenario candidate = base;
        --candidate.phaseKing.byzantineCount;
        out.push_back(std::move(candidate));
      }
      if (config.n > 4) {
        Scenario candidate = base;
        auto& c = candidate.phaseKing;
        --c.n;
        c.t.reset();
        const std::size_t divisor =
            c.algorithm == harness::PhaseKingConfig::Algorithm::kKing ? 3 : 4;
        c.byzantineCount =
            std::min(c.byzantineCount, (c.n - 1) / divisor);
        out.push_back(std::move(candidate));
      }
      eachInputSimplification(base, config.inputs, out, Family::kPhaseKing);
      break;
    }
    case Family::kRaft: {
      const auto& config = base.raft;
      eachCrashReduction(base, config, &Scenario::raft, out);
      // Restart reductions: drop each event, then pull each event earlier
      // and shorten each downtime (smaller schedules first).
      for (std::size_t i = 0; i < config.restarts.size(); ++i) {
        Scenario candidate = base;
        auto& restarts = candidate.raft.restarts;
        restarts.erase(restarts.begin() + static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(candidate));
      }
      for (std::size_t i = 0; i < config.restarts.size(); ++i) {
        if (config.restarts[i].at > 1) {
          Scenario candidate = base;
          auto& event = candidate.raft.restarts[i];
          event.at = std::max<Tick>(1, event.at / 2);
          out.push_back(std::move(candidate));
        }
        if (config.restarts[i].downtime > 1) {
          Scenario candidate = base;
          auto& event = candidate.raft.restarts[i];
          event.downtime = std::max<Tick>(1, event.downtime / 2);
          out.push_back(std::move(candidate));
        }
      }
      for (std::size_t i = 0; i < config.partitions.size(); ++i) {
        Scenario candidate = base;
        auto& partitions = candidate.raft.partitions;
        partitions.erase(partitions.begin() +
                         static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(candidate));
      }
      if (config.n > 3) {
        Scenario candidate = base;
        auto& c = candidate.raft;
        --c.n;
        if (!c.inputs.empty()) c.inputs.resize(c.n);
        dropCrashesAbove(c.crashes, c.n);
        std::erase_if(c.restarts,
                      [&c](const auto& event) { return event.id >= c.n; });
        for (auto& partition : c.partitions)
          if (partition.groups.size() > c.n) partition.groups.resize(c.n);
        out.push_back(std::move(candidate));
      }
      if (config.dropProbability > 0.0) {
        Scenario candidate = base;
        candidate.raft.dropProbability = 0.0;
        out.push_back(std::move(candidate));
      }
      if (config.duplicateProbability > 0.0) {
        Scenario candidate = base;
        candidate.raft.duplicateProbability = 0.0;
        out.push_back(std::move(candidate));
      }
      if (config.maxDelay > config.minDelay) {
        Scenario candidate = base;
        candidate.raft.maxDelay = config.minDelay;
        out.push_back(std::move(candidate));
      }
      eachAdversaryReduction(base, config.adversary, out, Family::kRaft);
      eachInputSimplification(base, config.inputs, out, Family::kRaft);
      break;
    }
    case Family::kCompose:
    case Family::kFd: {
      const auto& config = base.compose;
      eachCrashReduction(base, config, &Scenario::compose, out);
      // Scheduler reduction: a counterexample that survives under the
      // lockstep policy doesn't need round skew to manifest — try the
      // synchronized schedule before blaming the scheduling policy. (The
      // ooo-driver → event-driven step is not a reduction: the policies
      // are siblings, not a ladder.)
      if (config.scheduler != SchedulingPolicy::kLockstep) {
        Scenario candidate = base;
        candidate.compose.scheduler = SchedulingPolicy::kLockstep;
        out.push_back(std::move(candidate));
      }
      // Oracle-quality reductions: a counterexample that survives with a
      // quieter/faster oracle is a stronger counterexample.
      if (!config.oracle.empty()) {
        if (config.oracleKnobs.noise > 0.0) {
          Scenario candidate = base;
          candidate.compose.oracleKnobs.noise = 0.0;
          out.push_back(std::move(candidate));
        }
        if (config.oracleKnobs.stabilizeAt > 0) {
          Scenario candidate = base;
          candidate.compose.oracleKnobs.stabilizeAt = 0;
          out.push_back(std::move(candidate));
          candidate = base;
          candidate.compose.oracleKnobs.stabilizeAt /= 2;
          out.push_back(std::move(candidate));
        }
        if (config.oracleKnobs.completenessLag > 1) {
          Scenario candidate = base;
          candidate.compose.oracleKnobs.completenessLag /= 2;
          out.push_back(std::move(candidate));
        }
      }
      if (config.byzantineCount > 0) {
        Scenario candidate = base;
        --candidate.compose.byzantineCount;
        out.push_back(std::move(candidate));
      }
      if (config.n > 4) {
        Scenario candidate = base;
        auto& c = candidate.compose;
        --c.n;
        c.t.reset();  // recompute the default threshold for the new n
        if (c.byzantineCount >= c.n) c.byzantineCount = c.n - 1;
        dropCrashesAbove(c.crashes, c.n);
        out.push_back(std::move(candidate));
      }
      if (config.maxDelay > config.minDelay) {
        Scenario candidate = base;
        candidate.compose.maxDelay = config.minDelay;
        out.push_back(std::move(candidate));
        const Tick mid = (config.minDelay + config.maxDelay) / 2;
        if (mid != config.minDelay && mid != config.maxDelay) {
          candidate = base;
          candidate.compose.maxDelay = mid;
          out.push_back(std::move(candidate));
        }
      }
      eachAdversaryReduction(base, config.adversary, out, Family::kCompose);
      eachInputSimplification(base, config.inputs, out, Family::kCompose);
      break;
    }
    case Family::kSvc: {
      const auto& config = base.svc;
      eachCrashReduction(base, config, &Scenario::svc, out);
      // Restart reductions mirror the Raft family's: drop each event, pull
      // it earlier, shorten its downtime.
      for (std::size_t i = 0; i < config.restarts.size(); ++i) {
        Scenario candidate = base;
        auto& restarts = candidate.svc.restarts;
        restarts.erase(restarts.begin() + static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(candidate));
      }
      for (std::size_t i = 0; i < config.restarts.size(); ++i) {
        if (config.restarts[i].at > 1) {
          Scenario candidate = base;
          auto& event = candidate.svc.restarts[i];
          event.at = std::max<Tick>(1, event.at / 2);
          out.push_back(std::move(candidate));
        }
        if (config.restarts[i].downtime > 1) {
          Scenario candidate = base;
          auto& event = candidate.svc.restarts[i];
          event.downtime = std::max<Tick>(1, event.downtime / 2);
          out.push_back(std::move(candidate));
        }
      }
      // Shallower pipeline, smaller batches, less traffic: a finding that
      // survives with window=1 batch=1 is nearly the sequential log.
      if (config.service.window > 1) {
        Scenario candidate = base;
        candidate.svc.service.window = config.service.window / 2;
        out.push_back(std::move(candidate));
      }
      if (config.service.batchMax > 1) {
        Scenario candidate = base;
        candidate.svc.service.batchMax = config.service.batchMax / 2;
        out.push_back(std::move(candidate));
      }
      if (config.workload.commandsPerNode > 2) {
        Scenario candidate = base;
        candidate.svc.workload.commandsPerNode =
            config.workload.commandsPerNode / 2;
        out.push_back(std::move(candidate));
      }
      if (config.n > 3) {
        Scenario candidate = base;
        auto& c = candidate.svc;
        --c.n;
        c.t.reset();
        dropCrashesAbove(c.crashes, c.n);
        std::erase_if(c.restarts,
                      [&c](const auto& event) { return event.id >= c.n; });
        out.push_back(std::move(candidate));
      }
      if (config.maxDelay > config.minDelay) {
        Scenario candidate = base;
        candidate.svc.maxDelay = config.minDelay;
        out.push_back(std::move(candidate));
      }
      eachAdversaryReduction(base, config.adversary, out, Family::kSvc);
      break;
    }
  }
  return out;
}

}  // namespace

ShrinkResult shrinkCounterexample(Scenario scenario,
                                  const Invariant& invariant,
                                  const ShrinkOptions& options) {
  ShrinkResult result;
  result.scenario = std::move(scenario);
  bool progress = true;
  while (progress && result.attempts < options.maxAttempts) {
    progress = false;
    for (Scenario& candidate : reductions(result.scenario)) {
      if (result.attempts >= options.maxAttempts) break;
      ++result.attempts;
      if (invariant.check(candidate, runScenario(candidate)).has_value()) {
        result.scenario = std::move(candidate);
        ++result.accepted;
        progress = true;
        break;  // restart the pass from the smaller scenario
      }
    }
  }
  return result;
}

}  // namespace ooc::check

#include "check/replay.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "harness/scenarios.hpp"
#include "harness/serialize.hpp"

namespace ooc::check {
namespace {

/// End-of-run counters, derived identically on record and replay so the
/// two traces compare equal exactly when the runs match.
void fillCounters(Trace& trace, const RunReport& report) {
  trace.messagesSent = report.messages;
  trace.messagesDelivered = 0;
  trace.eventsProcessed = 0;
  trace.endTick = 0;
  for (const TraceEvent& event : trace.events) {
    if (event.kind == TraceEvent::Kind::kDeliver) ++trace.messagesDelivered;
    if (event.kind != TraceEvent::Kind::kDecision) ++trace.eventsProcessed;
    trace.endTick = event.at;
  }
}

}  // namespace

RecordedRun recordRun(const Scenario& scenario) {
  TraceRecorder recorder;
  harness::RunHooks hooks;
  hooks.observer = &recorder;
  RecordedRun run;
  run.report = runScenario(scenario, hooks);
  run.trace = std::move(recorder.trace());
  fillCounters(run.trace, run.report);
  return run;
}

ReplayResult replayRun(const Scenario& scenario, const Trace& expected) {
  TraceVerifier verifier(expected);
  harness::RunHooks hooks;
  hooks.observer = &verifier;
  ReplayResult result;
  result.report = runScenario(scenario, hooks);
  result.identical = verifier.ok();
  if (!result.identical) {
    if (verifier.divergence()) {
      result.divergence = verifier.divergence();
    } else {
      std::ostringstream os;
      os << "replay executed " << verifier.position() << " of "
         << expected.events.size() << " recorded events";
      result.divergence = os.str();
    }
  }
  return result;
}

std::string serializeCounterexample(const CounterexampleFile& file) {
  const std::string scenarioText = serialize(file.scenario);
  std::ostringstream os;
  os << "ooc-counterexample v1\n";
  os << "runid="
     << (file.runId.empty() ? harness::configRunId(scenarioText) : file.runId)
     << "\n";
  os << "invariant=" << file.invariant << "\n";
  os << "detail=" << file.detail << "\n";
  os << "scenario\n";
  os << scenarioText;
  os << "trace\n";
  serializeTrace(file.trace, os);
  return os.str();
}

CounterexampleFile parseCounterexample(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "ooc-counterexample v1")
    throw std::runtime_error("counterexample: bad header '" + line + "'");

  CounterexampleFile file;
  const auto field = [&](const char* key) {
    const std::string prefix = std::string(key) + "=";
    if (!std::getline(in, line) || line.rfind(prefix, 0) != 0)
      throw std::runtime_error(std::string("counterexample: expected ") +
                               key + "= line");
    return line.substr(prefix.size());
  };
  // runid= is optional: files written before the field existed omit it.
  if (!std::getline(in, line))
    throw std::runtime_error("counterexample: truncated after header");
  if (line.rfind("runid=", 0) == 0) {
    file.runId = line.substr(6);
    file.invariant = field("invariant");
  } else if (line.rfind("invariant=", 0) == 0) {
    file.invariant = line.substr(10);
  } else {
    throw std::runtime_error("counterexample: expected invariant= line");
  }
  file.detail = field("detail");

  if (!std::getline(in, line) || line != "scenario")
    throw std::runtime_error("counterexample: expected scenario section");
  std::string scenarioText;
  bool sawTrace = false;
  while (std::getline(in, line)) {
    if (line == "trace") {
      sawTrace = true;
      break;
    }
    scenarioText += line;
    scenarioText += '\n';
  }
  if (!sawTrace)
    throw std::runtime_error("counterexample: missing trace section");
  file.scenario = parseScenario(scenarioText);
  if (file.runId.empty()) file.runId = harness::configRunId(scenarioText);
  file.trace = parseTrace(in);
  return file;
}

void writeCounterexampleFile(const CounterexampleFile& file,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for write");
  out << serializeCounterexample(file);
  if (!out) throw std::runtime_error("write to '" + path + "' failed");
}

CounterexampleFile loadCounterexampleFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseCounterexample(buffer.str());
}

}  // namespace ooc::check

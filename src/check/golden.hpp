// Golden determinism fixtures: a small set of pinned (scenario, seed)
// configurations whose recorded runs are serialized to byte-stable
// artifacts (the counterexample file format, which embeds the scenario,
// the full schedule trace and the run counters).
//
// The artifacts live in tests/golden/ and are asserted byte-identical by
// tests/simcore_perf_test.cpp: any change to event ordering, payload
// sharing, fan-out, duplication-fault handling or the trace/counterexample
// serialization shows up as a diff. Regenerate with tools/golden_gen after
// an INTENDED schedule change — never to paper over an unintended one.
#pragma once

#include <string>
#include <vector>

#include "check/scenario.hpp"

namespace ooc::check {

struct GoldenFixture {
  /// File stem under tests/golden/ (<name>.golden).
  std::string name;
  Scenario scenario;
};

/// The pinned fixtures, chosen to cover the scheduler's hot paths:
/// broadcast fan-out (Ben-Or decomposed), nested envelopes (VAC-from-2AC),
/// lockstep barrier ordering (Phase-King), duplication faults plus
/// crash-restart staleness on shared payloads (Raft fault mix), and the
/// oracle role (rotating coordinator over a noisy Ω on a crash schedule).
std::vector<GoldenFixture> goldenFixtures();

/// The byte-stable artifact of a fixture: the serialized counterexample
/// file of its recorded run (scenario + invariant stub + trace + stats).
std::string renderGolden(const GoldenFixture& fixture);

}  // namespace ooc::check

// Greedy counterexample shrinking: starting from a violating scenario,
// repeatedly tries structurally smaller candidates (fewer crashes, fewer
// processes, earlier crash ticks, tighter delay bounds, smaller adversary
// budgets, simpler inputs) and keeps a candidate whenever re-running it
// still violates the same invariant. Terminates at a local minimum or the
// attempt cap. Deterministic: candidate order is fixed and every re-run is
// a pure function of its configuration.
#pragma once

#include <cstddef>

#include "check/invariant.hpp"
#include "check/scenario.hpp"

namespace ooc::check {

struct ShrinkOptions {
  /// Cap on candidate re-runs (each is a full simulation).
  std::size_t maxAttempts = 400;
};

struct ShrinkResult {
  /// The locally minimal scenario; still violates the invariant.
  Scenario scenario;
  /// Candidate re-runs performed.
  std::size_t attempts = 0;
  /// Candidates that kept the violation (accepted reductions).
  std::size_t accepted = 0;
};

/// `scenario` must violate `invariant` (the caller observed it fail).
ShrinkResult shrinkCounterexample(Scenario scenario,
                                  const Invariant& invariant,
                                  const ShrinkOptions& options = {});

}  // namespace ooc::check

// Human-readable timeline rendering of a recorded counterexample.
//
// A counterexample file carries the scenario and the violating schedule,
// but the schedule trace only knows scheduler-level events (deliveries,
// timers, decisions). The timeline re-executes the scenario — runs are
// pure functions of (configuration, seed), so the re-execution IS the
// recorded run — with a TelemetrySink attached, merging the protocol-level
// moments (detector confidence transitions, driver values) into each
// process's lane. The result is an annotated per-process account of how
// the violation unfolded, tick by tick.
#pragma once

#include <string>

#include "check/replay.hpp"

namespace ooc::check {

struct TimelineOptions {
  /// Include message-delivery events (the bulk of a trace). Disable to see
  /// only protocol structure: rounds, confidence transitions, decisions.
  bool showDeliveries = true;
  /// Include timer-fire events.
  bool showTimers = true;
  /// Per-process cap on rendered events; excess events are elided with a
  /// summary marker. 0 = unlimited.
  std::size_t maxEventsPerProcess = 0;
};

/// Renders the counterexample as a per-process timeline. Deterministic:
/// the same file renders to the same text on every call.
std::string renderTimeline(const CounterexampleFile& file,
                           const TimelineOptions& options = {});

}  // namespace ooc::check

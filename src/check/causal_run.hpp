// Re-executes a scenario with the causal recorder attached, optionally
// verifying the re-execution against a recorded trace. This is the glue
// every causality consumer goes through: `ooc explain/ctrace/audit`,
// `trace_view --perfetto`, and the causal CI audit all start from a
// counterexample or golden file and need the same record-verify step the
// timeline renderer performs.
#pragma once

#include <optional>
#include <string>

#include "check/replay.hpp"
#include "check/scenario.hpp"
#include "obs/causal/causal.hpp"

namespace ooc::check {

struct CausalRun {
  causal::CausalTrace trace;
  RunReport report;
  /// Only meaningful when an expected trace was supplied: the re-execution
  /// matched it event for event.
  bool replayIdentical = true;
  std::optional<std::string> divergence;
};

/// Runs the scenario with a CausalRecorder attached as both schedule
/// observer and telemetry sink. When `expected` is non-null the scheduler
/// stream is simultaneously checked against it (TraceVerifier semantics).
CausalRun collectCausalRun(const Scenario& scenario,
                           const Trace* expected = nullptr);

/// TraceMeta (run id + one-line scenario description) for a loaded
/// counterexample file, matching the ids its other artifacts carry.
causal::TraceMeta causalMeta(const CounterexampleFile& file);

}  // namespace ooc::check

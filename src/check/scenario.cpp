#include "check/scenario.hpp"

#include <sstream>
#include <stdexcept>

#include "compose/run.hpp"
#include "harness/serialize.hpp"

namespace ooc::check {

const char* toString(Family family) noexcept {
  switch (family) {
    case Family::kBenOr: return "benor";
    case Family::kPhaseKing: return "phaseking";
    case Family::kRaft: return "raft";
    case Family::kCompose: return "compose";
    case Family::kFd: return "fd";
    case Family::kSvc: return "svc";
  }
  return "?";
}

Family parseFamily(const std::string& name) {
  if (name == "benor") return Family::kBenOr;
  if (name == "phaseking") return Family::kPhaseKing;
  if (name == "raft") return Family::kRaft;
  if (name == "compose") return Family::kCompose;
  if (name == "fd") return Family::kFd;
  if (name == "svc") return Family::kSvc;
  throw std::runtime_error("unknown scenario family '" + name + "'");
}

std::uint64_t Scenario::seed() const noexcept {
  switch (family) {
    case Family::kBenOr: return benOr.seed;
    case Family::kPhaseKing: return phaseKing.seed;
    case Family::kRaft: return raft.seed;
    case Family::kCompose:
    case Family::kFd: return compose.seed;
    case Family::kSvc: return svc.seed;
  }
  return 0;
}

void Scenario::setSeed(std::uint64_t seed) noexcept {
  switch (family) {
    case Family::kBenOr: benOr.seed = seed; break;
    case Family::kPhaseKing: phaseKing.seed = seed; break;
    case Family::kRaft: raft.seed = seed; break;
    case Family::kCompose:
    case Family::kFd: compose.seed = seed; break;
    case Family::kSvc: svc.seed = seed; break;
  }
}

std::size_t Scenario::processCount() const noexcept {
  switch (family) {
    case Family::kBenOr: return benOr.n;
    case Family::kPhaseKing: return phaseKing.n;
    case Family::kRaft: return raft.n;
    case Family::kCompose:
    case Family::kFd: return compose.n;
    case Family::kSvc: return svc.n;
  }
  return 0;
}

RunReport runScenario(const Scenario& scenario,
                      const harness::RunHooks& hooks) {
  RunReport report;
  switch (scenario.family) {
    case Family::kBenOr: {
      const auto result = harness::runBenOr(scenario.benOr, hooks);
      report.allDecided = result.allDecided;
      report.agreementViolated = result.agreementViolated;
      report.validityViolated = result.validityViolated;
      report.decidedValue = result.decidedValue;
      report.messages = result.messagesByCorrect;
      report.audits = result.audits;
      report.allAuditsOk = result.allAuditsOk;
      report.adoptOutcomesTotal = result.adoptOutcomesTotal;
      report.adoptMismatchWitnesses = result.adoptMismatchWitnesses;
      break;
    }
    case Family::kPhaseKing: {
      const auto result = harness::runPhaseKing(scenario.phaseKing, hooks);
      report.allDecided = result.allDecided;
      report.agreementViolated = result.agreementViolated;
      report.validityViolated = result.validityViolated;
      report.decidedValue = result.decidedValue;
      report.messages = result.messagesByCorrect;
      report.audits = result.audits;
      report.allAuditsOk = result.allAuditsOk;
      break;
    }
    case Family::kRaft: {
      const auto result = harness::runRaft(scenario.raft, hooks);
      report.allDecided = result.allDecided;
      report.agreementViolated = result.agreementViolated;
      report.validityViolated = result.validityViolated;
      report.decidedValue = result.decidedValue;
      report.messages = result.messages;
      report.confidenceOrderOk = result.confidenceOrderOk;
      report.commitValuesAgree = result.commitValuesAgree;
      report.restarts = result.restarts;
      report.recoveries = result.recoveries;
      report.voteAmnesia = result.voteAmnesia;
      report.voteAmnesiaDetail = result.voteAmnesiaDetail;
      report.commitRegression = result.commitRegression;
      report.commitRegressionDetail = result.commitRegressionDetail;
      break;
    }
    case Family::kCompose:
    case Family::kFd: {
      const auto result =
          compose::runComposition(scenario.compose, hooks);
      report.allDecided = result.allDecided;
      report.agreementViolated = result.agreementViolated;
      report.validityViolated = result.validityViolated;
      report.decidedValue = result.decidedValue;
      report.messages = result.messagesByCorrect;
      report.audits = result.audits;
      report.allAuditsOk = result.allAuditsOk;
      report.adoptOutcomesTotal = result.adoptOutcomesTotal;
      report.adoptMismatchWitnesses = result.adoptMismatchWitnesses;
      report.overlapWitnesses = result.overlapWitnesses;
      report.deferredActivations = result.deferredActivations;
      report.maxRoundSkew = result.maxRoundSkew;
      if (result.oracleAudit) {
        const fd::OracleAudit& audit = *result.oracleAudit;
        report.hasOracle = true;
        report.fdCompletenessOk = audit.completenessOk;
        report.fdCompletenessDetail = audit.completenessDetail;
        report.fdAccuracyOk = audit.accuracyOk;
        report.fdAccuracyDetail = audit.accuracyDetail;
        report.fdConvergenceOk = audit.convergenceOk;
        report.fdConvergenceDetail = audit.convergenceDetail;
      }
      break;
    }
    case Family::kSvc: {
      const auto result = svc::runSvc(scenario.svc, hooks);
      report.messages = result.messagesByCorrect;
      report.svcPrefixOk = result.prefixOk;
      report.svcExactlyOnce = result.exactlyOnce;
      report.svcCommandsCommitted = result.commandsCommitted;
      // Termination for a service run: it quiesced inside the tick budget
      // and — when no fault schedule removes proposers — every emitted
      // command reached every node's applied log.
      const bool faults =
          !scenario.svc.crashes.empty() || !scenario.svc.restarts.empty();
      report.allDecided = !result.hitCap && (faults || result.allApplied);
      break;
    }
  }
  return report;
}

std::string serialize(const Scenario& scenario) {
  std::string out = std::string("family=") + toString(scenario.family) + "\n";
  switch (scenario.family) {
    case Family::kBenOr: return out + harness::serialize(scenario.benOr);
    case Family::kPhaseKing:
      return out + harness::serialize(scenario.phaseKing);
    case Family::kRaft: return out + harness::serialize(scenario.raft);
    case Family::kCompose:
    case Family::kFd:
      return out + compose::serialize(scenario.compose);
    case Family::kSvc:
      return out + svc::serializeSvcConfig(scenario.svc);
  }
  return out;
}

Scenario parseScenario(const std::string& text) {
  const auto newline = text.find('\n');
  const std::string first =
      newline == std::string::npos ? text : text.substr(0, newline);
  if (first.rfind("family=", 0) != 0)
    throw std::runtime_error("scenario: expected leading family= line");
  Scenario scenario;
  scenario.family = parseFamily(first.substr(7));
  const std::string rest =
      newline == std::string::npos ? "" : text.substr(newline + 1);
  switch (scenario.family) {
    case Family::kBenOr:
      scenario.benOr = harness::parseBenOrConfig(rest);
      break;
    case Family::kPhaseKing:
      scenario.phaseKing = harness::parsePhaseKingConfig(rest);
      break;
    case Family::kRaft:
      scenario.raft = harness::parseRaftConfig(rest);
      break;
    case Family::kCompose:
    case Family::kFd:
      // parseComposition ends by resolving against the registry, so a
      // rejected pairing (or incoherent oracle attachment) fails here
      // with the same diagnostic as the CLI.
      scenario.compose = compose::parseComposition(rest);
      break;
    case Family::kSvc:
      // parseSvcConfig re-runs the engine capability gate, so a scenario
      // file naming an inadmissible pairing fails here with the same
      // diagnostic runSvc would throw.
      scenario.svc = svc::parseSvcConfig(rest);
      break;
  }
  return scenario;
}

std::string describe(const Scenario& scenario) {
  std::ostringstream os;
  os << toString(scenario.family) << " n=" << scenario.processCount()
     << " seed=" << scenario.seed();
  switch (scenario.family) {
    case Family::kBenOr:
      os << " mode=" << harness::toString(scenario.benOr.mode)
         << " reconciliator="
         << harness::toString(scenario.benOr.reconciliator)
         << " crashes=" << scenario.benOr.crashes.size()
         << " max-delay=" << scenario.benOr.maxDelay;
      if (scenario.benOr.adversary.enabled())
        os << " adversary-budget=" << scenario.benOr.adversary.extraDelayMax;
      if (scenario.benOr.fault != harness::BenOrConfig::Fault::kNone)
        os << " fault=" << harness::toString(scenario.benOr.fault);
      break;
    case Family::kPhaseKing:
      os << " algorithm=" << harness::toString(scenario.phaseKing.algorithm)
         << " byzantine=" << scenario.phaseKing.byzantineCount
         << " strategy=" << phaseking::toString(scenario.phaseKing.strategy)
         << " placement=" << harness::toString(scenario.phaseKing.placement);
      break;
    case Family::kRaft:
      os << " crashes=" << scenario.raft.crashes.size()
         << " partitions=" << scenario.raft.partitions.size()
         << " drop-prob=" << scenario.raft.dropProbability;
      if (!scenario.raft.restarts.empty()) {
        os << " restarts=";
        for (std::size_t i = 0; i < scenario.raft.restarts.size(); ++i) {
          const auto& event = scenario.raft.restarts[i];
          if (i > 0) os << ',';
          os << 'p' << event.id << '@' << event.at << '+' << event.downtime;
        }
        os << (scenario.raft.raft.durable ? " durable" : " volatile");
        if (scenario.raft.raft.durable)
          os << (scenario.raft.raft.syncBeforeReply ? "+sync" : "+nosync");
      }
      if (scenario.raft.adversary.enabled())
        os << " adversary-budget=" << scenario.raft.adversary.extraDelayMax;
      break;
    case Family::kCompose:
    case Family::kFd:
      os << " detector=" << scenario.compose.detector
         << " driver=" << scenario.compose.driver;
      if (scenario.compose.scheduler != SchedulingPolicy::kLockstep)
        os << " scheduler=" << ooc::toString(scenario.compose.scheduler);
      if (!scenario.compose.oracle.empty())
        os << " oracle=" << scenario.compose.oracle
           << " stabilize-at=" << scenario.compose.oracleKnobs.stabilizeAt
           << " noise=" << scenario.compose.oracleKnobs.noise;
      os << " byzantine=" << scenario.compose.byzantineCount
         << " crashes=" << scenario.compose.crashes.size();
      if (scenario.compose.adversary.enabled())
        os << " adversary-budget="
           << scenario.compose.adversary.extraDelayMax;
      break;
    case Family::kSvc:
      os << " engine=" << scenario.svc.engine;
      if (scenario.svc.engine == "compose")
        os << " detector=" << scenario.svc.detector
           << " driver=" << scenario.svc.driver;
      os << " window=" << scenario.svc.service.window
         << " batch-max=" << scenario.svc.service.batchMax
         << " crashes=" << scenario.svc.crashes.size();
      if (!scenario.svc.restarts.empty()) {
        os << " restarts=";
        for (std::size_t i = 0; i < scenario.svc.restarts.size(); ++i) {
          const auto& event = scenario.svc.restarts[i];
          if (i > 0) os << ',';
          os << 'p' << event.id << '@' << event.at << '+' << event.downtime;
        }
        os << (scenario.svc.service.durable ? " durable" : " volatile");
      }
      if (scenario.svc.adversary.enabled())
        os << " adversary-budget=" << scenario.svc.adversary.extraDelayMax;
      break;
  }
  return os.str();
}

}  // namespace ooc::check

#include "check/invariant.hpp"

#include <sstream>

namespace ooc::check {

std::optional<Violation> AgreementInvariant::check(
    const Scenario&, const RunReport& report) const {
  if (!report.agreementViolated) return std::nullopt;
  return Violation{name(), "two correct processes decided different values"};
}

std::optional<Violation> ValidityInvariant::check(
    const Scenario&, const RunReport& report) const {
  if (!report.validityViolated) return std::nullopt;
  return Violation{name(), "a correct process decided a non-input value"};
}

std::optional<Violation> CoherenceAuditInvariant::check(
    const Scenario&, const RunReport& report) const {
  for (std::size_t i = 0; i < report.audits.size(); ++i) {
    const RoundAudit& audit = report.audits[i];
    if (audit.ok()) continue;
    std::ostringstream os;
    os << "round " << (i + 1) << ":";
    if (!audit.validity) os << " validity";
    if (!audit.convergence) os << " convergence";
    if (!audit.coherenceAdoptCommit) os << " coherence(adopt,commit)";
    if (!audit.coherenceVacillateAdopt) os << " coherence(vacillate,adopt)";
    os << " violated";
    return Violation{name(), os.str()};
  }
  return std::nullopt;
}

std::optional<Violation> TerminationInvariant::check(
    const Scenario&, const RunReport& report) const {
  if (report.allDecided) return std::nullopt;
  return Violation{name(),
                   "a correct process failed to decide within the run caps"};
}

std::optional<Violation> RaftConfidenceInvariant::check(
    const Scenario& scenario, const RunReport& report) const {
  if (scenario.family != Family::kRaft) return std::nullopt;
  if (!report.confidenceOrderOk)
    return Violation{name(), "commit observed before any adopt-level evidence"};
  if (!report.commitValuesAgree)
    return Violation{name(), "commit-level values disagree across processes"};
  return std::nullopt;
}

std::optional<Violation> VoteAmnesiaInvariant::check(
    const Scenario& scenario, const RunReport& report) const {
  if (scenario.family != Family::kRaft) return std::nullopt;
  if (!report.voteAmnesia) return std::nullopt;
  return Violation{name(), report.voteAmnesiaDetail};
}

std::optional<Violation> CommitRegressionInvariant::check(
    const Scenario& scenario, const RunReport& report) const {
  if (scenario.family != Family::kRaft) return std::nullopt;
  if (!report.commitRegression) return std::nullopt;
  return Violation{name(), report.commitRegressionDetail};
}

std::optional<Violation> FdCompletenessInvariant::check(
    const Scenario&, const RunReport& report) const {
  if (!report.hasOracle || report.fdCompletenessOk) return std::nullopt;
  return Violation{name(), report.fdCompletenessDetail};
}

std::optional<Violation> FdAccuracyInvariant::check(
    const Scenario&, const RunReport& report) const {
  if (!report.hasOracle || report.fdAccuracyOk) return std::nullopt;
  return Violation{name(), report.fdAccuracyDetail};
}

std::optional<Violation> FdConvergenceInvariant::check(
    const Scenario&, const RunReport& report) const {
  if (!report.hasOracle || report.fdConvergenceOk) return std::nullopt;
  return Violation{name(), report.fdConvergenceDetail};
}

std::optional<Violation> SvcPrefixInvariant::check(
    const Scenario& scenario, const RunReport& report) const {
  if (scenario.family != Family::kSvc) return std::nullopt;
  if (report.svcPrefixOk) return std::nullopt;
  return Violation{name(),
                   "two nodes' applied logs disagree on their common prefix"};
}

std::optional<Violation> SvcExactlyOnceInvariant::check(
    const Scenario& scenario, const RunReport& report) const {
  if (scenario.family != Family::kSvc) return std::nullopt;
  if (report.svcExactlyOnce) return std::nullopt;
  return Violation{name(),
                   "a command was applied twice or a batch won two decrees"};
}

std::optional<Violation> SchedulerCoherenceInvariant::check(
    const Scenario& scenario, const RunReport& report) const {
  if (scenario.family != Family::kCompose && scenario.family != Family::kFd)
    return std::nullopt;
  const SchedulingPolicy policy = scenario.compose.scheduler;
  const auto fire = [this](const char* what, std::uint64_t count,
                           SchedulingPolicy policy) {
    std::ostringstream os;
    os << count << " " << what << " under the " << ooc::toString(policy)
       << " policy (structurally impossible; RoundScheduler regression)";
    return Violation{name(), os.str()};
  };
  if (policy != SchedulingPolicy::kOooDriver && report.overlapWitnesses > 0)
    return fire("overlap witnesses", report.overlapWitnesses, policy);
  if (policy != SchedulingPolicy::kEventDriven &&
      report.deferredActivations > 0)
    return fire("deferred activations", report.deferredActivations, policy);
  return std::nullopt;
}

std::optional<Violation> AdoptWitnessInvariant::check(
    const Scenario&, const RunReport& report) const {
  if (report.adoptMismatchWitnesses == 0) return std::nullopt;
  std::ostringstream os;
  os << report.adoptMismatchWitnesses << " of " << report.adoptOutcomesTotal
     << " adopt outcomes disagree with the decision (decide-on-adopt would "
        "have broken agreement)";
  return Violation{name(), os.str()};
}

std::vector<std::unique_ptr<Invariant>> safetySuite(bool requireTermination) {
  std::vector<std::unique_ptr<Invariant>> suite;
  suite.push_back(std::make_unique<AgreementInvariant>());
  suite.push_back(std::make_unique<ValidityInvariant>());
  suite.push_back(std::make_unique<CoherenceAuditInvariant>());
  suite.push_back(std::make_unique<RaftConfidenceInvariant>());
  suite.push_back(std::make_unique<VoteAmnesiaInvariant>());
  suite.push_back(std::make_unique<CommitRegressionInvariant>());
  suite.push_back(std::make_unique<FdCompletenessInvariant>());
  suite.push_back(std::make_unique<FdAccuracyInvariant>());
  suite.push_back(std::make_unique<SvcPrefixInvariant>());
  suite.push_back(std::make_unique<SvcExactlyOnceInvariant>());
  suite.push_back(std::make_unique<SchedulerCoherenceInvariant>());
  if (requireTermination) {
    // Convergence is the oracle's liveness promise — like termination, it
    // is only demanded of sweeps that expect runs to finish.
    suite.push_back(std::make_unique<FdConvergenceInvariant>());
    suite.push_back(std::make_unique<TerminationInvariant>());
  }
  return suite;
}

std::vector<const Invariant*> view(
    const std::vector<std::unique_ptr<Invariant>>& suite) {
  std::vector<const Invariant*> out;
  out.reserve(suite.size());
  for (const auto& invariant : suite) out.push_back(invariant.get());
  return out;
}

}  // namespace ooc::check

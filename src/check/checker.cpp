#include "check/checker.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "check/replay.hpp"
#include "obs/metrics.hpp"
#include "sweep/scheduler.hpp"

namespace ooc::check {
namespace {

const Invariant* findByName(const std::vector<const Invariant*>& invariants,
                            const std::string& name) {
  for (const Invariant* invariant : invariants)
    if (name == invariant->name()) return invariant;
  return nullptr;
}

}  // namespace

CheckReport explore(const ExplorationStrategy& strategy,
                    const std::vector<const Invariant*>& invariants,
                    const CheckerOptions& options) {
  const std::size_t total = strategy.size();

  // The sweep itself runs on the shared experiment scheduler (the
  // work-stealing driver extracted from here in PR 9): chunked index-space
  // sharding over the persistent worker pool keeps a worker on consecutive
  // configurations (similar scenario shape, so its thread-local simulation
  // arenas — EventQueue bucket rings, timer tables, trace buffers — stay
  // sized right across runs), while stealing keeps the sweep balanced when
  // some configurations run much longer than others (restart grids mix
  // 2-tick and 200-tick downtimes). Findings are sorted by configIndex
  // afterwards, so the report does not depend on the interleaving.
  std::atomic<std::size_t> findingCount{0};
  std::mutex mutex;
  std::vector<Finding> findings;

  sweep::Options pool;
  pool.threads = options.threads;
  pool.progressEvery = options.progressEvery;
  if (options.progressEvery > 0 && options.onProgress) {
    // The scheduler's contention-free heartbeat carries (done, total); the
    // finding count rides along from a relaxed atomic mirror.
    pool.onProgress = [&](std::size_t done, std::size_t totalConfigs) {
      options.onProgress(done, totalConfigs,
                         findingCount.load(std::memory_order_relaxed));
    };
  }

  SweepStats sweepStats = sweep::parallelFor(
      total,
      [&](std::size_t index, sweep::Control& control) {
        const Scenario scenario = strategy.generate(index);
        const RunReport report = runScenario(scenario);
        for (const Invariant* invariant : invariants) {
          auto violation = invariant->check(scenario, report);
          if (!violation) continue;
          std::lock_guard<std::mutex> lock(mutex);
          Finding finding;
          finding.configIndex = index;
          finding.violation = std::move(*violation);
          finding.scenario = scenario;
          findings.push_back(std::move(finding));
          findingCount.store(findings.size(), std::memory_order_relaxed);
          if (options.maxFindings > 0 &&
              findings.size() >= options.maxFindings)
            control.requestStop();
          break;
        }
      },
      pool);
  const std::size_t explored = sweepStats.configs;

  // Registry feed: only the thread-invariant sweep total, labeled by
  // strategy. The sweep's *shape* (workers, chunk size, chunk/steal
  // counts) depends on the thread count, so it lives exclusively in the
  // quarantined `sweep` telemetry block (sweep::toJson) — the registry
  // snapshot stays byte-identical across --threads values, which CI diffs.
  if (obs::enabled()) {
    const obs::Labels labels{{"strategy", strategy.name()}};
    obs::metrics().addCounter("check_sweep_configs", explored, labels);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.configIndex < b.configIndex;
            });
  if (options.maxFindings > 0 && findings.size() > options.maxFindings)
    findings.resize(options.maxFindings);

  // Post-processing runs sequentially: shrinking and trace emission must be
  // deterministic regardless of the worker-pool interleaving above.
  if (!options.traceDir.empty())
    std::filesystem::create_directories(options.traceDir);
  for (Finding& finding : findings) {
    const Invariant* invariant =
        findByName(invariants, finding.violation.invariant);
    if (options.shrink && invariant != nullptr) {
      ShrinkResult shrunk = shrinkCounterexample(
          finding.scenario, *invariant, options.shrinkOptions);
      finding.shrinkAttempts = shrunk.attempts;
      finding.shrunk = std::move(shrunk.scenario);
      // Re-derive the violation detail from the minimal configuration.
      if (auto violation = invariant->check(
              *finding.shrunk, runScenario(*finding.shrunk)))
        finding.violation = std::move(*violation);
    }
    if (!options.traceDir.empty()) {
      const Scenario& minimal =
          finding.shrunk ? *finding.shrunk : finding.scenario;
      CounterexampleFile file;
      file.scenario = minimal;
      file.invariant = finding.violation.invariant;
      file.detail = finding.violation.detail;
      file.trace = recordRun(minimal).trace;
      const std::filesystem::path path =
          std::filesystem::path(options.traceDir) /
          ("counterexample-" + std::to_string(finding.configIndex) +
           ".trace");
      writeCounterexampleFile(file, path.string());
      finding.tracePath = path.string();
    }
  }

  CheckReport report;
  report.configsExplored = explored;
  report.findings = std::move(findings);
  report.sweep = std::move(sweepStats);
  return report;
}

}  // namespace ooc::check

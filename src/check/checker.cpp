#include "check/checker.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <filesystem>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "check/replay.hpp"
#include "obs/metrics.hpp"

namespace ooc::check {
namespace {

const Invariant* findByName(const std::vector<const Invariant*>& invariants,
                            const std::string& name) {
  for (const Invariant* invariant : invariants)
    if (name == invariant->name()) return invariant;
  return nullptr;
}

/// One worker's share of the configuration space, as [begin, end) index
/// chunks. The owner pops from the front; thieves steal from the back, so
/// an owner and a thief only contend when one chunk is left.
struct WorkerQueue {
  std::mutex mutex;
  std::deque<std::pair<std::size_t, std::size_t>> chunks;
};

}  // namespace

CheckReport explore(const ExplorationStrategy& strategy,
                    const std::vector<const Invariant*>& invariants,
                    const CheckerOptions& options) {
  const std::size_t total = strategy.size();
  std::size_t threadCount = options.threads;
  if (threadCount == 0)
    threadCount = std::max(1u, std::thread::hardware_concurrency());
  threadCount = std::max<std::size_t>(1, std::min(threadCount, total));

  std::atomic<std::size_t> explored{0};
  std::atomic<bool> stop{false};
  std::mutex mutex;
  std::vector<Finding> findings;
  std::exception_ptr firstError;

  // Work-stealing sweep driver. The index space is cut into chunks and
  // dealt round-robin to per-worker deques; a worker drains its own deque
  // from the front and, when empty, steals a chunk from a victim's back.
  // Chunks keep a worker on consecutive configurations (similar scenario
  // shape, so its thread-local EventQueue arena — one warm bucket ring per
  // thread, see sim/event_queue.cpp — stays sized right), while stealing
  // keeps the sweep balanced when some configurations run much longer than
  // others (restart grids mix 2-tick and 200-tick downtimes). Findings are
  // sorted by configIndex afterwards, so the report does not depend on the
  // interleaving.
  const std::size_t chunkSize = std::clamp<std::size_t>(
      total / (threadCount * 16), std::size_t{1}, std::size_t{1024});
  std::vector<WorkerQueue> queues(threadCount);
  std::vector<WorkerStats> workerStats(threadCount);
  for (std::size_t begin = 0, dealt = 0; begin < total;
       begin += chunkSize, ++dealt) {
    queues[dealt % threadCount].chunks.emplace_back(
        begin, std::min(begin + chunkSize, total));
    ++workerStats[dealt % threadCount].chunksDealt;
  }

  const auto takeChunk =
      [&](std::size_t self) -> std::optional<std::pair<std::size_t, std::size_t>> {
    {
      std::lock_guard<std::mutex> lock(queues[self].mutex);
      auto& own = queues[self].chunks;
      if (!own.empty()) {
        auto chunk = own.front();
        own.pop_front();
        ++workerStats[self].chunksOwned;
        return chunk;
      }
    }
    for (std::size_t offset = 1; offset < threadCount; ++offset) {
      WorkerQueue& victim = queues[(self + offset) % threadCount];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.chunks.empty()) {
        auto chunk = victim.chunks.back();
        victim.chunks.pop_back();
        ++workerStats[self].chunksStolen;
        return chunk;
      }
    }
    return std::nullopt;
  };

  const auto progressTick = [&]() {
    if (options.progressEvery == 0 || !options.onProgress) return;
    const std::size_t count = explored.fetch_add(1, std::memory_order_relaxed) + 1;
    if (count % options.progressEvery != 0) return;
    std::lock_guard<std::mutex> lock(mutex);
    options.onProgress(count, total, findings.size());
  };

  const auto worker = [&](std::size_t self) {
    const auto begin = std::chrono::steady_clock::now();
    while (!stop.load(std::memory_order_relaxed)) {
      const auto chunk = takeChunk(self);
      if (!chunk) break;
      for (std::size_t index = chunk->first; index < chunk->second; ++index) {
        if (stop.load(std::memory_order_relaxed)) break;
        try {
          const Scenario scenario = strategy.generate(index);
          const RunReport report = runScenario(scenario);
          ++workerStats[self].configs;
          if (options.progressEvery > 0 && options.onProgress)
            progressTick();
          else
            explored.fetch_add(1, std::memory_order_relaxed);
          for (const Invariant* invariant : invariants) {
            auto violation = invariant->check(scenario, report);
            if (!violation) continue;
            std::lock_guard<std::mutex> lock(mutex);
            Finding finding;
            finding.configIndex = index;
            finding.violation = std::move(*violation);
            finding.scenario = scenario;
            findings.push_back(std::move(finding));
            if (options.maxFindings > 0 &&
                findings.size() >= options.maxFindings)
              stop.store(true, std::memory_order_relaxed);
            break;
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!firstError) firstError = std::current_exception();
          stop.store(true, std::memory_order_relaxed);
        }
      }
    }
    const std::chrono::duration<double> spent =
        std::chrono::steady_clock::now() - begin;
    workerStats[self].seconds = spent.count();
    if (workerStats[self].seconds > 0.0)
      workerStats[self].configsPerSec =
          static_cast<double>(workerStats[self].configs) /
          workerStats[self].seconds;
  };

  const auto sweepBegin = std::chrono::steady_clock::now();
  if (threadCount <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threadCount);
    for (std::size_t i = 0; i < threadCount; ++i)
      pool.emplace_back(worker, i);
    for (auto& thread : pool) thread.join();
  }
  const std::chrono::duration<double> sweepElapsed =
      std::chrono::steady_clock::now() - sweepBegin;
  if (firstError) std::rethrow_exception(firstError);

  SweepStats sweep;
  sweep.workers = threadCount;
  sweep.chunkSize = chunkSize;
  sweep.elapsedSeconds = sweepElapsed.count();
  sweep.perWorker = std::move(workerStats);
  for (const WorkerStats& stats : sweep.perWorker) {
    sweep.chunksDealt += stats.chunksDealt;
    sweep.steals += stats.chunksStolen;
  }
  if (sweep.elapsedSeconds > 0.0)
    sweep.configsPerSec =
        static_cast<double>(explored.load()) / sweep.elapsedSeconds;
  // Registry feed: the deterministic shape of the sweep (workers, chunking)
  // as gauges/counters, labeled by strategy. Wall-clock rates stay out of
  // the registry — its snapshots are byte-diffed for nondeterminism.
  if (obs::enabled()) {
    const obs::Labels labels{{"strategy", strategy.name()}};
    obs::metrics().addCounter("check_sweep_configs", explored.load(), labels);
    obs::metrics().addCounter("check_sweep_chunks", sweep.chunksDealt,
                              labels);
    obs::metrics().setGauge("check_sweep_workers",
                            static_cast<double>(sweep.workers), labels);
    obs::metrics().setGauge("check_sweep_chunk_size",
                            static_cast<double>(sweep.chunkSize), labels);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.configIndex < b.configIndex;
            });
  if (options.maxFindings > 0 && findings.size() > options.maxFindings)
    findings.resize(options.maxFindings);

  // Post-processing runs sequentially: shrinking and trace emission must be
  // deterministic regardless of the worker-pool interleaving above.
  if (!options.traceDir.empty())
    std::filesystem::create_directories(options.traceDir);
  for (Finding& finding : findings) {
    const Invariant* invariant =
        findByName(invariants, finding.violation.invariant);
    if (options.shrink && invariant != nullptr) {
      ShrinkResult shrunk = shrinkCounterexample(
          finding.scenario, *invariant, options.shrinkOptions);
      finding.shrinkAttempts = shrunk.attempts;
      finding.shrunk = std::move(shrunk.scenario);
      // Re-derive the violation detail from the minimal configuration.
      if (auto violation = invariant->check(
              *finding.shrunk, runScenario(*finding.shrunk)))
        finding.violation = std::move(*violation);
    }
    if (!options.traceDir.empty()) {
      const Scenario& minimal =
          finding.shrunk ? *finding.shrunk : finding.scenario;
      CounterexampleFile file;
      file.scenario = minimal;
      file.invariant = finding.violation.invariant;
      file.detail = finding.violation.detail;
      file.trace = recordRun(minimal).trace;
      const std::filesystem::path path =
          std::filesystem::path(options.traceDir) /
          ("counterexample-" + std::to_string(finding.configIndex) +
           ".trace");
      writeCounterexampleFile(file, path.string());
      finding.tracePath = path.string();
    }
  }

  CheckReport report;
  report.configsExplored = explored.load();
  report.findings = std::move(findings);
  report.sweep = std::move(sweep);
  return report;
}

}  // namespace ooc::check

#include "check/causal_run.hpp"

#include "harness/serialize.hpp"

namespace ooc::check {
namespace {

/// Forwards the scheduler stream to the causal recorder and, when a
/// recorded trace is present, to a verifier — one observer slot, two
/// consumers.
class RecordAndVerify final : public ScheduleObserver {
 public:
  RecordAndVerify(causal::CausalRecorder& recorder, const Trace* expected)
      : recorder_(recorder) {
    if (expected != nullptr) verifier_.emplace(*expected);
  }

  void onEvent(const TraceEvent& event) override {
    if (verifier_) verifier_->onEvent(event);
    recorder_.onEvent(event);
  }
  bool wantsCausality() const noexcept override { return true; }
  void onCausal(const CausalStamp& stamp) override {
    recorder_.onCausal(stamp);
  }

  const std::optional<TraceVerifier>& verifier() const noexcept {
    return verifier_;
  }

 private:
  causal::CausalRecorder& recorder_;
  std::optional<TraceVerifier> verifier_;
};

}  // namespace

CausalRun collectCausalRun(const Scenario& scenario, const Trace* expected) {
  causal::CausalRecorder recorder(scenario.processCount());
  RecordAndVerify observer(recorder, expected);
  harness::RunHooks hooks;
  hooks.observer = &observer;
  hooks.telemetry = &recorder;

  CausalRun result;
  result.report = runScenario(scenario, hooks);
  result.trace = std::move(recorder.trace());
  if (observer.verifier()) {
    result.replayIdentical = observer.verifier()->ok();
    result.divergence = observer.verifier()->divergence();
  }
  return result;
}

causal::TraceMeta causalMeta(const CounterexampleFile& file) {
  causal::TraceMeta meta;
  meta.runId = file.runId.empty()
                   ? harness::configRunId(serialize(file.scenario))
                   : file.runId;
  meta.scenario = describe(file.scenario);
  return meta;
}

}  // namespace ooc::check

// Family-independent view of a scenario run, so exploration strategies,
// invariants and the shrinker can treat Ben-Or, Phase-King and Raft runs
// uniformly. A Scenario is a tagged union of the harness configurations; a
// RunReport is the least common denominator of the harness results that the
// invariant monitors consume.
#pragma once

#include <string>

#include "harness/scenarios.hpp"
#include "svc/run.hpp"

namespace ooc::check {

enum class Family { kBenOr, kPhaseKing, kRaft, kCompose, kFd, kSvc };

const char* toString(Family family) noexcept;
Family parseFamily(const std::string& name);

/// One fully specified run configuration of any scenario family. Only the
/// member selected by `family` is meaningful. kCompose covers any
/// registered detector × driver pairing directly (the legacy families are
/// the pairings that predate the registry, kept for their serialized
/// counterexamples and monolithic baselines). kFd shares the compose
/// member — it is the oracle-guided corner of the composition space, split
/// out as its own family so the oracle-quality strategy and the FD-axiom
/// invariants have a home of their own.
struct Scenario {
  Family family = Family::kBenOr;
  harness::BenOrConfig benOr;
  harness::PhaseKingConfig phaseKing;
  harness::RaftScenarioConfig raft;
  compose::Composition compose;
  svc::SvcConfig svc;

  std::uint64_t seed() const noexcept;
  void setSeed(std::uint64_t seed) noexcept;
  /// Process count of the active family.
  std::size_t processCount() const noexcept;
};

/// The observations every invariant can ask about, whatever the family.
struct RunReport {
  bool allDecided = false;
  bool agreementViolated = false;
  bool validityViolated = false;
  Value decidedValue = kNoValue;
  std::uint64_t messages = 0;

  /// Per-round object audits (empty for monolithic Ben-Or and Raft).
  std::vector<RoundAudit> audits;
  bool allAuditsOk = true;

  /// §5 witnesses: completed adopt outcomes disagreeing with the decision.
  std::size_t adoptOutcomesTotal = 0;
  std::size_t adoptMismatchWitnesses = 0;

  /// Scheduling-policy observations (compose/fd families; zero elsewhere).
  /// Overlap witnesses and deferred activations are structural to their
  /// policy — lockstep pins both to zero, event-driven produces no
  /// overlaps, the ooo-driver policy no deferrals — which is what the
  /// scheduler-coherence invariant checks.
  std::uint64_t overlapWitnesses = 0;
  std::uint64_t deferredActivations = 0;
  Round maxRoundSkew = 0;

  /// Raft VAC-instrumentation checks (trivially true for other families).
  bool confidenceOrderOk = true;
  bool commitValuesAgree = true;

  /// Crash-recovery observations (Raft family; zero/false elsewhere).
  std::uint64_t restarts = 0;
  std::uint64_t recoveries = 0;
  /// Ground-truth durability audits: a process granted one term's vote to
  /// two candidates / observed two different committed values across its
  /// incarnations. Detail strings name the witness process.
  bool voteAmnesia = false;
  std::string voteAmnesiaDetail;
  bool commitRegression = false;
  std::string commitRegressionDetail;

  /// Failure-detector axiom audit (oracle-guided compositions only;
  /// hasOracle false — and the checks vacuously true — elsewhere).
  bool hasOracle = false;
  bool fdCompletenessOk = true;
  std::string fdCompletenessDetail;
  bool fdAccuracyOk = true;
  std::string fdAccuracyDetail;
  bool fdConvergenceOk = true;
  std::string fdConvergenceDetail;

  /// Replicated-log service audits (svc family; trivially true elsewhere).
  /// Prefix agreement is the multi-decree generalization of agreement;
  /// exactly-once covers duplicate applies and batches winning two decrees.
  bool svcPrefixOk = true;
  bool svcExactlyOnce = true;
  std::uint64_t svcCommandsCommitted = 0;
};

/// Runs the scenario to completion (one deterministic Simulator per call;
/// safe to invoke concurrently from many threads).
RunReport runScenario(const Scenario& scenario,
                      const harness::RunHooks& hooks = {});

/// Text round-trip: a `family=...` line followed by the family config's
/// key=value serialization (harness/serialize.hpp).
std::string serialize(const Scenario& scenario);
Scenario parseScenario(const std::string& text);

/// One-line human summary for checker reports.
std::string describe(const Scenario& scenario);

}  // namespace ooc::check

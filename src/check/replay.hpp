// Trace record/replay for explored runs, and the standalone counterexample
// file format (scenario + violation + trace) the checker emits.
//
// Replay re-executes the scenario from its serialized configuration — runs
// are pure functions of (configuration, seed) — while a TraceVerifier
// attached to the scheduler proves the re-execution is bit-identical to the
// recorded one and pinpoints the first divergence otherwise.
#pragma once

#include <optional>
#include <string>

#include "check/scenario.hpp"
#include "sim/trace.hpp"

namespace ooc::check {

struct RecordedRun {
  RunReport report;
  Trace trace;
};

/// Runs the scenario with a TraceRecorder attached; fills the trace's
/// end-of-run counters from the recorded events and the run report.
RecordedRun recordRun(const Scenario& scenario);

struct ReplayResult {
  RunReport report;
  /// Every scheduler event matched the recorded trace, in order and count.
  bool identical = false;
  /// First mismatch, when not identical.
  std::optional<std::string> divergence;
};

/// Re-executes the scenario against a recorded trace.
ReplayResult replayRun(const Scenario& scenario, const Trace& expected);

/// A self-contained counterexample: the scenario, the invariant it
/// violated, and the violating run's trace.
struct CounterexampleFile {
  Scenario scenario;
  std::string invariant;
  std::string detail;
  Trace trace;
  /// Deterministic run identifier (harness::configRunId of the serialized
  /// scenario). Filled on serialize when empty; optional on parse — files
  /// written before the field existed load fine and get the id recomputed.
  std::string runId;
};

std::string serializeCounterexample(const CounterexampleFile& file);
CounterexampleFile parseCounterexample(const std::string& text);

/// File helpers; throw std::runtime_error on I/O or parse failure.
void writeCounterexampleFile(const CounterexampleFile& file,
                             const std::string& path);
CounterexampleFile loadCounterexampleFile(const std::string& path);

}  // namespace ooc::check

// Deterministic client-workload generator for the replicated-log service.
//
// The model simulates a large logical client population (10^5-10^6 clients
// are cheap: per-client state is never materialized) issuing commands
// against a keyspace with zipfian popularity — the standard skew of
// storage-system traces. Two arrival disciplines:
//
//  * closed loop (default): every client has at most one command in
//    flight. The initial wave spreads the population's first commands over
//    `startSpread` ticks; when one of this node's commands commits, the
//    issuing client "thinks" for a uniform [thinkMin, thinkMax] ticks and
//    then issues its next command. Concurrency self-regulates with commit
//    throughput — the classic closed-loop property.
//  * open loop: commands arrive at `arrivalsPerTick` regardless of commit
//    progress, optionally modulated by periodic bursts (x burstFactor for
//    burstLen ticks every burstEvery ticks). Open loops expose overload:
//    queues grow when the decree pipeline falls behind.
//
// Emission is capped at `commandsPerNode` so runs terminate; the cap is
// what bounds a 10^6-client population to a finite schedule (only the
// earliest arrivals of the wave fit under it). All randomness derives from
// one seed: a Workload's arrival calendar, client ids and key draws are a
// pure function of (options, node, n, seed).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace ooc::svc {

struct WorkloadOptions {
  /// Logical client population, cluster-wide; client c is homed at node
  /// c % n. Populations of 10^5-10^6 cost nothing beyond the draws.
  std::uint64_t clients = 100000;
  /// Emission cap per node (the run's finite-schedule bound).
  std::uint64_t commandsPerNode = 48;
  /// Closed loop (think-time) vs open loop (fixed arrival rate).
  bool closedLoop = true;
  /// Closed loop: think time drawn uniformly from [thinkMin, thinkMax].
  Tick thinkMin = 20;
  Tick thinkMax = 200;
  /// Closed loop: the population's first commands spread over this window.
  Tick startSpread = 64;
  /// Open loop: base arrivals per tick at this node.
  double arrivalsPerTick = 0.25;
  /// Open loop bursts: every `burstEvery` ticks the rate is multiplied by
  /// `burstFactor` for `burstLen` ticks. 0 disables bursts.
  Tick burstEvery = 0;
  Tick burstLen = 0;
  double burstFactor = 4.0;
  /// Zipfian key popularity over [0, keySpace): P(k) ~ 1/(k+1)^theta.
  double zipfTheta = 0.99;
  std::uint32_t keySpace = 1 << 16;
};

/// One client command arrival: which logical client issued it, against
/// which key. The command id itself is minted by the service node.
struct Arrival {
  std::uint64_t client = 0;
  std::uint32_t key = 0;
};

/// Per-node deterministic arrival calendar. The service node polls
/// nextArrivalTick() to arm its arrival timer and collect()s the arrivals
/// when it fires; commits feed back through onCommit() in closed-loop mode.
class Workload {
 public:
  Workload(const WorkloadOptions& options, ProcessId node, std::size_t n,
           std::uint64_t seed);

  /// Earliest tick (strictly greater than `now`) with pending arrivals;
  /// 0 when the calendar is empty (cap reached and nothing scheduled).
  Tick nextArrivalTick(Tick now) const;

  /// Draws and consumes every arrival scheduled at or before `tick`
  /// (arrivals missed during a crash downtime are swept up on the next
  /// firing).
  std::vector<Arrival> collect(Tick tick);

  /// Closed-loop feedback: one of this node's commands committed at `now`;
  /// the issuing client thinks and then re-arrives (until the cap).
  void onCommit(Tick now);

  std::uint64_t emitted() const noexcept { return emitted_; }
  std::uint64_t cap() const noexcept { return options_.commandsPerNode; }
  bool exhausted() const noexcept { return planned_ >= cap() && calendar_.empty(); }

  /// Key-popularity observations (over this node's emitted commands).
  std::uint64_t distinctKeys() const noexcept { return keyCounts_.size(); }
  /// Hits on the single most popular key drawn so far.
  std::uint64_t hottestKeyHits() const;

 private:
  std::uint32_t drawKey();

  WorkloadOptions options_;
  std::uint64_t population_ = 0;  ///< clients homed at this node
  Rng rng_;
  /// tick -> number of arrivals scheduled there (drawn lazily at collect).
  std::map<Tick, std::uint32_t> calendar_;
  /// Zipf CDF over [0, keySpace), built once per workload.
  std::vector<double> zipfCdf_;
  std::uint64_t planned_ = 0;  ///< arrivals scheduled (cap applies here)
  std::uint64_t emitted_ = 0;  ///< arrivals actually collected
  std::unordered_map<std::uint32_t, std::uint64_t> keyCounts_;
};

}  // namespace ooc::svc

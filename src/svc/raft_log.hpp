// Raft-native replicated-log service node: the baseline the composed
// engines are measured against in E21. Where SvcNode builds the log out
// of per-decree single-shot consensus instances, Raft IS a multi-decree
// log natively — leader-based pipelining (AppendEntries carries up to
// maxEntriesPerAppend entries), commit-index batching, and durable
// restart recovery all come from RaftProcess. This adapter only adds the
// client side:
//
//  * the same deterministic Workload as SvcNode mints commands on a
//    timer;
//  * a node that is not the leader fans its commands out (CmdForward);
//    whoever leads appends them, deduplicating against its log and the
//    applied prefix;
//  * commands not yet applied are re-fanned-out periodically, which is
//    what carries them across leader failovers (the blackout window E21
//    measures is visible as the commit-tick gap this retry bridges);
//  * onApply records the service-level log: applied commands (exactly
//    once — a failover can legitimately duplicate a command in the Raft
//    log, the apply-level dedup suppresses the second occurrence
//    identically at every node), per-command decide latency, and the
//    commit-advance batch sizes.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "raft/raft_process.hpp"
#include "svc/service.hpp"
#include "svc/workload.hpp"

namespace ooc::svc {

/// A non-leader's client commands, fanned out so the current leader (now
/// or after the next election) can append them.
class CmdForward final : public MessageBase<CmdForward> {
 public:
  explicit CmdForward(std::vector<Value> commands)
      : commands_(std::move(commands)) {}

  const std::vector<Value>& commands() const noexcept { return commands_; }

  std::string describe() const override {
    return "CmdForward{cmds=" + std::to_string(commands_.size()) + "}";
  }

 private:
  std::vector<Value> commands_;
};

struct RaftLogOptions {
  raft::RaftConfig raft;
  /// Period of the unapplied-command re-fanout (the failover bridge).
  Tick resubmitEvery = 80;
};

class RaftLogNode final : public raft::RaftProcess {
 public:
  RaftLogNode(RaftLogOptions options, const WorkloadOptions& workload,
              std::size_t n, std::uint64_t seed);

  void onStart() override;
  void onRestart() override;
  void onMessage(ProcessId from, const Message& message) override;
  void onTimer(TimerId id) override;

  // --- observation (the SvcNode-shaped view runSvc audits) ---
  const std::vector<Value>& applied() const noexcept { return applied_; }
  const std::vector<Tick>& commitTicks() const noexcept {
    return commitTicks_;
  }
  const std::vector<Tick>& latencies() const noexcept { return latencies_; }
  const std::vector<std::uint32_t>& batchSizes() const noexcept {
    return batchSizes_;
  }
  std::uint64_t duplicatesSuppressed() const noexcept {
    return dupSuppressed_;
  }
  /// Leader-barrier no-ops this node applied (skipped entries; the raft
  /// analogue of SvcNode's no-op decrees — see RaftProcess::leaderBarrier).
  std::uint64_t noopsApplied() const noexcept { return noopsApplied_; }
  const Workload& workload() const noexcept { return workload_; }

  /// This node's client calendar is exhausted and every command it minted
  /// (and still remembers) has been applied locally. Raft never quiesces
  /// on its own — heartbeats and the resubmit bridge re-arm forever — so
  /// runSvc's stop predicate is built from this.
  bool drained() const noexcept;

  /// (tick, term) of each election this node won, for the failover
  /// blackout probe. Survives restarts.
  struct LeaderEvent {
    Tick at = 0;
    raft::Term term = 0;
  };
  const std::vector<LeaderEvent>& leaderEvents() const noexcept {
    return leaderEvents_;
  }

 protected:
  void onApply(raft::LogIndex index, const raft::LogEntry& entry) override;
  void onBecameLeader() override;
  void onCommitAdvanced() override;
  void onVolatileReset() override;
  std::optional<Value> leaderBarrier() const override;

 private:
  Value mintCommand();
  void armArrivalTimer();
  void handleArrivals();
  void offerCommands(const std::vector<Value>& commands);
  void resubmitUnapplied();

  WorkloadOptions workloadOptions_;
  std::size_t workloadN_;
  std::uint64_t workloadSeed_;
  Workload workload_;

  std::uint32_t cmdSeq_ = 0;  ///< per-incarnation (see mintCommand)
  /// Own commands in mint order, retried until applied.
  std::deque<Value> pendingLocal_;
  std::unordered_map<Value, Tick> arrivalTick_;

  std::vector<Value> applied_;
  std::unordered_set<Value> appliedSet_;
  std::vector<Tick> commitTicks_;
  std::vector<Tick> latencies_;
  std::vector<std::uint32_t> batchSizes_;
  std::uint64_t dupSuppressed_ = 0;
  std::uint64_t noopsApplied_ = 0;
  raft::LogIndex lastBatchCommit_ = 0;
  std::vector<LeaderEvent> leaderEvents_;

  TimerId arrivalTimer_ = 0;
  Tick arrivalArmedFor_ = 0;
  TimerId resubmitTimer_ = 0;
  /// True while the base class replays the journal in onRestart: replayed
  /// applies must not re-trigger closed-loop client feedback.
  bool replaying_ = false;

  Tick resubmitEvery_;
};

}  // namespace ooc::svc

#include "svc/run.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "compose/kv.hpp"
#include "compose/registry.hpp"
#include "core/consensus_process.hpp"
#include "obs/metrics.hpp"
#include "paxos/paxos_node.hpp"
#include "sim/simulator.hpp"
#include "svc/raft_log.hpp"

namespace ooc::svc {
namespace {

/// Decrees restart the template's rounds at 1, so every per-decree engine
/// seed must mix the decree in (the sequential log's livelock rule).
std::uint64_t decreeSeed(std::uint64_t seed, std::uint64_t decree) noexcept {
  return seed ^ (0x9E3779B97F4A7C15ull * (decree + 1));
}

bool prefixEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

bool uniqueValues(const std::vector<Value>& values, bool skipNoop) {
  std::unordered_set<Value> seen;
  for (Value v : values) {
    if (skipNoop && v == kNoopBatch) continue;
    if (!seen.insert(v).second) return false;
  }
  return true;
}

}  // namespace

std::optional<std::string> validateEngine(const SvcConfig& config) {
  if (config.engine == "raft" || config.engine == "paxos") {
    if (config.scheduler != SchedulingPolicy::kLockstep) {
      return "service engine '" + config.engine +
             "' has no round scheduler to swap: the scheduling policy "
             "applies to composed per-decree engines only";
    }
    return std::nullopt;
  }
  if (config.engine != "compose") {
    return "unknown service engine '" + config.engine +
           "' (known: compose, paxos, raft)";
  }
  using compose::DetectorClass;
  using compose::DriverClass;
  using compose::FaultModel;
  using compose::InvocationMode;
  using compose::OracleRequirement;
  // Throws (listing known names) on an unknown name, like the resolver.
  const auto& detector = compose::registry().detector(config.detector);
  const auto& driver = compose::registry().driver(config.driver);
  if (const auto rejected = compose::registry().validatePairing(
          config.detector, config.driver)) {
    return rejected;
  }
  if (detector.capability.detectorClass !=
      DetectorClass::kVacillateAdoptCommit) {
    return "service engine needs a VAC detector: the log decides on commit "
           "under Algorithm 1, and '" +
           config.detector + "' is adopt-commit";
  }
  if (detector.capability.faultModel != FaultModel::kCrash) {
    return "service engine '" + config.detector +
           "' assumes a Byzantine fault model; the service's batching and "
           "catch-up protocols are crash-model only";
  }
  if (detector.capability.mode == InvocationMode::kLockstep) {
    return "service engine '" + config.detector +
           "' is lockstep-only; the service runs under the asynchronous "
           "scheduler (timer-driven client arrivals)";
  }
  if (driver.capability.mode == InvocationMode::kLockstep) {
    return "service driver '" + config.driver + "' is lockstep-only";
  }
  if (driver.capability.driverClass != DriverClass::kReconciliator) {
    return "service driver '" + config.driver +
           "' is a conciliator; the VAC template takes a reconciliator";
  }
  if (!driver.capability.multivalued) {
    return "service driver '" + config.driver +
           "' is not multivalued: a binary coin can never return a client "
           "command, so the log would decide values nobody proposed";
  }
  if (driver.capability.oracle != OracleRequirement::kNone) {
    return "service driver '" + config.driver +
           "' consumes a failure-detector oracle; the service harness "
           "attaches none";
  }
  // Non-lockstep round scheduling rides the same capability gate as the
  // compose layer: async-mode, skew-tolerant objects only.
  if (const auto rejected = compose::registry().validateScheduling(
          config.detector, config.driver, config.scheduler)) {
    return rejected;
  }
  return std::nullopt;
}

SvcResult runSvc(const SvcConfig& config, const compose::RunHooks& hooks) {
  if (const auto rejected = validateEngine(config))
    throw std::invalid_argument(*rejected);
  if (config.n == 0) throw std::invalid_argument("svc: n must be positive");

  const std::size_t n = config.n;

  SimConfig simConfig;
  simConfig.seed = config.seed;
  simConfig.maxTicks = config.maxTicks;
  simConfig.lockstep = false;
  UniformDelayNetwork::Options net;
  net.minDelay = config.minDelay;
  net.maxDelay = config.maxDelay;
  Simulator sim(simConfig,
                compose::wrapAdversary(
                    std::make_unique<UniformDelayNetwork>(net),
                    config.adversary));
  if (hooks.observer) sim.setScheduleObserver(hooks.observer);

  std::vector<SvcNode*> svcNodes(n, nullptr);
  std::vector<RaftLogNode*> raftNodes(n, nullptr);

  if (config.engine == "raft") {
    RaftLogOptions options;
    options.raft.electionTimeoutMin = config.raftElectionMin;
    options.raft.electionTimeoutMax = config.raftElectionMax;
    options.raft.heartbeatInterval = config.raftHeartbeat;
    options.raft.durable = config.service.durable;
    options.raft.syncBeforeReply = config.service.syncBeforeReply;
    options.raft.storage = config.service.storage;
    options.resubmitEvery = config.resubmitEvery;
    for (ProcessId id = 0; id < n; ++id) {
      auto node = std::make_unique<RaftLogNode>(options, config.workload, n,
                                                config.seed);
      raftNodes[id] = node.get();
      sim.addProcess(std::move(node));
    }
  } else {
    EngineFactory factory;
    if (config.engine == "paxos") {
      // One proposer per decree (the batch owner); everyone else is a
      // passive acceptor/learner — unless the run has faults, in which
      // case reactive joiners drive a slow no-op ballot as the rescue for
      // decrees whose proposer died mid-ballot.
      const bool rescue =
          !config.crashes.empty() || !config.restarts.empty();
      const paxos::PaxosConfig base = [&] {
        paxos::PaxosConfig pc;
        pc.retryMin = config.paxosRetryMin;
        pc.retryMax = config.paxosRetryMax;
        return pc;
      }();
      factory = [base, rescue](std::uint64_t /*decree*/, Value proposal,
                               bool proposer) -> std::unique_ptr<Process> {
        paxos::PaxosConfig pc = base;
        if (!proposer) {
          pc.propose = rescue;
          pc.retryMin = base.retryMin * 8;
          pc.retryMax = base.retryMax * 8;
        }
        return std::make_unique<paxos::PaxosNode>(proposal, pc);
      };
    } else {
      const auto* detector = &compose::registry().detector(config.detector);
      const auto* driver = &compose::registry().driver(config.driver);
      const std::size_t t = config.t.value_or(
          (n - 1) / std::max<std::size_t>(1, detector->capability.tDivisor));
      compose::ObjectParams params;
      params.n = n;
      params.t = t;
      params.seed = config.seed;
      params.bias = config.bias;
      const Round maxRounds = config.maxRoundsPerDecree;
      const SchedulingPolicy scheduling = config.scheduler;
      factory = [detector, driver, params, maxRounds, scheduling](
                    std::uint64_t decree, Value proposal,
                    bool /*proposer*/) -> std::unique_ptr<Process> {
        compose::ObjectParams p = params;
        p.seed = decreeSeed(params.seed, decree);
        ConsensusProcess::Options options;
        options.kind = TemplateKind::kVacReconciliator;
        options.scheduling = scheduling;
        options.alwaysRunDriver = true;
        options.participateRoundsAfterDecide = 1;
        options.maxRounds = maxRounds;
        return std::make_unique<ConsensusProcess>(
            proposal, detector->make(p), driver->make(p), options);
      };
    }
    for (ProcessId id = 0; id < n; ++id) {
      auto node = std::make_unique<SvcNode>(factory, config.workload, n,
                                            config.seed, config.service);
      svcNodes[id] = node.get();
      sim.addProcess(std::move(node));
    }
  }

  for (const auto& [id, tick] : config.crashes) sim.crashAt(id, tick);
  for (const RestartEvent& event : config.restarts)
    sim.restartAt(event.id, event.at, event.downtime);

  if (config.engine == "raft") {
    // Raft never quiesces — heartbeats and the resubmit bridge re-arm
    // forever — so the run needs an explicit endpoint: every node still up
    // is drained (calendar done, own commands applied) and the applied
    // prefixes have equalized. Permanently crashed nodes are exempt; a
    // node inside its restart downtime just keeps the predicate false
    // until it is back and caught up.
    std::unordered_set<ProcessId> permanentlyDown;
    for (const auto& [id, tick] : config.crashes) permanentlyDown.insert(id);
    sim.setStopPredicate([&raftNodes, permanentlyDown](const Simulator& s) {
      std::size_t reference = raftNodes.size();
      for (ProcessId id = 0; id < raftNodes.size(); ++id) {
        if (s.crashed(id)) {
          if (permanentlyDown.contains(id)) continue;
          return false;  // mid-downtime: wait for the restart
        }
        if (!raftNodes[id]->drained()) return false;
        if (reference == raftNodes.size()) {
          reference = id;
        } else if (raftNodes[id]->applied().size() !=
                   raftNodes[reference]->applied().size()) {
          return false;
        }
      }
      return reference != raftNodes.size();
    });
  }
  // The other engines need no stop predicate: idle detection quiesces the
  // cluster and the event queue drains (maxTicks guards runaways, reported
  // via hitCap).
  sim.run();

  // --- collect ---------------------------------------------------------
  const bool raft = config.engine == "raft";
  std::vector<std::vector<Value>> appliedLogs(n);
  std::vector<std::vector<Value>> decreeLogs(n);
  SvcResult result;
  std::uint64_t emitted = 0;
  for (ProcessId id = 0; id < n; ++id) {
    if (raft) {
      appliedLogs[id] = raftNodes[id]->applied();
      emitted += raftNodes[id]->workload().emitted();
      result.duplicatesSuppressed += raftNodes[id]->duplicatesSuppressed();
      result.noopDecrees =
          std::max(result.noopDecrees, raftNodes[id]->noopsApplied());
      const auto& lat = raftNodes[id]->latencies();
      result.latencies.insert(result.latencies.end(), lat.begin(), lat.end());
      const auto& batches = raftNodes[id]->batchSizes();
      result.batchSizes.insert(result.batchSizes.end(), batches.begin(),
                               batches.end());
      for (const auto& event : raftNodes[id]->leaderEvents())
        result.leaderEvents.emplace_back(event.at, id);
    } else {
      appliedLogs[id] = svcNodes[id]->applied();
      decreeLogs[id] = svcNodes[id]->decreeLog();
      emitted += svcNodes[id]->workload().emitted();
      result.duplicatesSuppressed += svcNodes[id]->duplicatesSuppressed();
      result.noopDecrees =
          std::max(result.noopDecrees, svcNodes[id]->noopDecrees());
      const auto& lat = svcNodes[id]->latencies();
      result.latencies.insert(result.latencies.end(), lat.begin(), lat.end());
      const auto& batches = svcNodes[id]->batchSizes();
      result.batchSizes.insert(result.batchSizes.end(), batches.begin(),
                               batches.end());
    }
  }
  std::sort(result.leaderEvents.begin(), result.leaderEvents.end());
  result.commandsEmitted = emitted;
  result.messagesByCorrect = sim.messagesSentByCorrect();
  result.eventsProcessed = sim.eventsProcessed();
  result.hitCap = sim.hitCap();

  // --- audits ----------------------------------------------------------
  // Prefix agreement over applied command logs (and, for decree-based
  // engines, over the decree logs themselves).
  for (ProcessId a = 0; a < n && result.prefixOk; ++a) {
    for (ProcessId b = a + 1; b < n && result.prefixOk; ++b) {
      if (!prefixEqual(appliedLogs[a], appliedLogs[b])) result.prefixOk = false;
      if (!raft && !prefixEqual(decreeLogs[a], decreeLogs[b]))
        result.prefixOk = false;
    }
  }
  // Exactly-once: no command applied twice at any node, and (decree-based
  // engines) no batch wins two decrees, with zero suppressed duplicates —
  // a suppressed duplicate there means a batch was re-proposed unsafely.
  // Raft legitimately relies on suppression across failovers, so only the
  // applied-log uniqueness is asserted for it.
  for (ProcessId id = 0; id < n && result.exactlyOnce; ++id) {
    if (!uniqueValues(appliedLogs[id], /*skipNoop=*/false))
      result.exactlyOnce = false;
    if (!raft && !uniqueValues(decreeLogs[id], /*skipNoop=*/true))
      result.exactlyOnce = false;
  }
  if (!raft && result.duplicatesSuppressed != 0) result.exactlyOnce = false;

  std::size_t longest = 0;
  for (ProcessId id = 0; id < n; ++id) {
    longest = std::max(longest, appliedLogs[id].size());
    result.decreesCommitted = std::max(
        result.decreesCommitted,
        raft ? appliedLogs[id].size() : decreeLogs[id].size());
  }
  result.commandsCommitted = longest;
  result.allApplied = result.prefixOk && emitted > 0;
  for (ProcessId id = 0; id < n; ++id)
    if (appliedLogs[id].size() != emitted) result.allApplied = false;

  // Reference node for the commit timeline: the first node the fault
  // schedule never touches.
  ProcessId reference = 0;
  for (ProcessId id = 0; id < n; ++id) {
    bool faulted = false;
    for (const auto& [cid, tick] : config.crashes) faulted |= (cid == id);
    for (const RestartEvent& event : config.restarts)
      faulted |= (event.id == id);
    if (!faulted) {
      reference = id;
      break;
    }
  }
  const std::vector<Tick>& ticks = raft ? raftNodes[reference]->commitTicks()
                                        : svcNodes[reference]->commitTicks();
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    result.lastCommitTick = std::max(result.lastCommitTick, ticks[i]);
    if (i > 0 && ticks[i] - ticks[i - 1] > result.maxCommitGap)
      result.maxCommitGap = ticks[i] - ticks[i - 1];
  }
  if (result.lastCommitTick > 0) {
    result.commandsPerKtick =
        static_cast<double>(result.commandsCommitted) * 1000.0 /
        static_cast<double>(result.lastCommitTick);
  }

  if (obs::enabled()) {
    const obs::Labels base =
        hooks.telemetryLabels.empty()
            ? obs::Labels{{"engine", config.engine}, {"family", "svc"}}
            : hooks.telemetryLabels;
    obs::metrics().addCounter("svc_commands_committed",
                              result.commandsCommitted, base);
    obs::metrics().addCounter("svc_decrees_committed",
                              result.decreesCommitted, base);
    obs::metrics().addCounter("svc_noop_decrees", result.noopDecrees, base);
    for (const Tick latency : result.latencies) {
      obs::metrics().observe("svc_decide_latency_ticks",
                             static_cast<double>(latency), base);
    }
    for (const std::uint32_t size : result.batchSizes)
      obs::metrics().observe("svc_batch_size", size, base);
    // No per-run gauges here: a last-writer-wins gauge from inside a run is
    // order-dependent once trials fan across the experiment scheduler.
    // Aggregate gauges (svc_mean_commands_per_ktick, svc_blackout_ticks)
    // are set by the callers' sequential trial-order folds instead.
  }
  return result;
}

// --- wire format -----------------------------------------------------------

std::string serializeSvcConfig(const SvcConfig& config) {
  compose::KvWriter kv;
  kv.put("engine", config.engine);
  if (config.engine == "compose") {
    kv.put("detector", config.detector);
    kv.put("driver", config.driver);
    // Wire purity: the scheduler key exists only when non-lockstep, so
    // every pre-policy scenario file and run-id stays byte-identical.
    if (config.scheduler != SchedulingPolicy::kLockstep)
      kv.put("scheduler", toString(config.scheduler));
  }
  kv.put("n", static_cast<std::uint64_t>(config.n));
  if (config.t) kv.put("t", static_cast<std::uint64_t>(*config.t));
  kv.put("seed", config.seed);
  kv.put("bias", config.bias);
  kv.put("window", config.service.window);
  kv.put("batch-max", static_cast<std::uint64_t>(config.service.batchMax));
  kv.put("max-decrees", config.service.maxDecrees);
  kv.put("fetch-retry", config.service.fetchRetry);
  kv.put("catchup-retry", config.service.catchupRetry);
  kv.put("durable", static_cast<std::uint64_t>(config.service.durable));
  kv.put("sync-before-reply",
         static_cast<std::uint64_t>(config.service.syncBeforeReply));
  kv.put("torn-prob", config.service.storage.tornTailProbability);
  kv.put("corrupt-prob", config.service.storage.corruptProbability);
  kv.put("clients", config.workload.clients);
  kv.put("commands-per-node", config.workload.commandsPerNode);
  kv.put("closed-loop", static_cast<std::uint64_t>(config.workload.closedLoop));
  kv.put("think-min", config.workload.thinkMin);
  kv.put("think-max", config.workload.thinkMax);
  kv.put("start-spread", config.workload.startSpread);
  kv.put("arrivals-per-tick", config.workload.arrivalsPerTick);
  kv.put("burst-every", config.workload.burstEvery);
  kv.put("burst-len", config.workload.burstLen);
  kv.put("burst-factor", config.workload.burstFactor);
  kv.put("zipf-theta", config.workload.zipfTheta);
  kv.put("key-space", static_cast<std::uint64_t>(config.workload.keySpace));
  kv.put("min-delay", config.minDelay);
  kv.put("max-delay", config.maxDelay);
  for (const auto& crash : config.crashes)
    kv.put("crash", compose::crashEntry(crash));
  for (const RestartEvent& event : config.restarts) {
    kv.put("restart", std::to_string(event.id) + "@" +
                          std::to_string(event.at) + "+" +
                          std::to_string(event.downtime));
  }
  compose::putAdversary(kv, config.adversary);
  kv.put("max-rounds", static_cast<std::uint64_t>(config.maxRoundsPerDecree));
  kv.put("max-ticks", config.maxTicks);
  kv.put("paxos-retry-min", config.paxosRetryMin);
  kv.put("paxos-retry-max", config.paxosRetryMax);
  kv.put("election-min", config.raftElectionMin);
  kv.put("election-max", config.raftElectionMax);
  kv.put("heartbeat", config.raftHeartbeat);
  kv.put("resubmit-every", config.resubmitEvery);
  return compose::stampRunId(kv.str());
}

SvcConfig parseSvcConfig(const std::string& text) {
  const compose::KvReader kv(text);
  SvcConfig config;
  config.engine = kv.get("engine", config.engine);
  config.detector = kv.get("detector", config.detector);
  config.driver = kv.get("driver", config.driver);
  if (kv.has("scheduler")) {
    const std::string name = kv.get("scheduler", "lockstep");
    const auto policy = parseSchedulingPolicy(name);
    if (!policy)
      throw std::runtime_error("unknown scheduler '" + name +
                               "'; known: lockstep, event-driven, ooo-driver");
    config.scheduler = *policy;
  }
  config.n = kv.getU64("n", config.n);
  if (kv.has("t")) config.t = kv.getU64("t", 0);
  config.seed = kv.getU64("seed", config.seed);
  config.bias = kv.getDouble("bias", config.bias);
  config.service.window = kv.getU64("window", config.service.window);
  config.service.batchMax = kv.getU64("batch-max", config.service.batchMax);
  config.service.maxDecrees =
      kv.getU64("max-decrees", config.service.maxDecrees);
  config.service.fetchRetry =
      kv.getU64("fetch-retry", config.service.fetchRetry);
  config.service.catchupRetry =
      kv.getU64("catchup-retry", config.service.catchupRetry);
  config.service.durable =
      kv.getU64("durable", config.service.durable ? 1 : 0) != 0;
  config.service.syncBeforeReply =
      kv.getU64("sync-before-reply",
                config.service.syncBeforeReply ? 1 : 0) != 0;
  config.service.storage.tornTailProbability =
      kv.getDouble("torn-prob", config.service.storage.tornTailProbability);
  config.service.storage.corruptProbability =
      kv.getDouble("corrupt-prob", config.service.storage.corruptProbability);
  config.workload.clients = kv.getU64("clients", config.workload.clients);
  config.workload.commandsPerNode =
      kv.getU64("commands-per-node", config.workload.commandsPerNode);
  config.workload.closedLoop =
      kv.getU64("closed-loop", config.workload.closedLoop ? 1 : 0) != 0;
  config.workload.thinkMin = kv.getU64("think-min", config.workload.thinkMin);
  config.workload.thinkMax = kv.getU64("think-max", config.workload.thinkMax);
  config.workload.startSpread =
      kv.getU64("start-spread", config.workload.startSpread);
  config.workload.arrivalsPerTick =
      kv.getDouble("arrivals-per-tick", config.workload.arrivalsPerTick);
  config.workload.burstEvery =
      kv.getU64("burst-every", config.workload.burstEvery);
  config.workload.burstLen = kv.getU64("burst-len", config.workload.burstLen);
  config.workload.burstFactor =
      kv.getDouble("burst-factor", config.workload.burstFactor);
  config.workload.zipfTheta =
      kv.getDouble("zipf-theta", config.workload.zipfTheta);
  config.workload.keySpace = static_cast<std::uint32_t>(
      kv.getU64("key-space", config.workload.keySpace));
  config.minDelay = kv.getU64("min-delay", config.minDelay);
  config.maxDelay = kv.getU64("max-delay", config.maxDelay);
  for (const std::string& entry : kv.getAll("crash"))
    config.crashes.push_back(compose::parseCrash(entry));
  for (const std::string& entry : kv.getAll("restart")) {
    const auto at = entry.find('@');
    const auto plus = entry.find('+', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || plus == std::string::npos)
      throw std::runtime_error("svc: malformed restart '" + entry + "'");
    RestartEvent event;
    event.id = static_cast<ProcessId>(std::stoul(entry.substr(0, at)));
    event.at = std::stoull(entry.substr(at + 1, plus - at - 1));
    event.downtime = std::stoull(entry.substr(plus + 1));
    config.restarts.push_back(event);
  }
  config.adversary = compose::getAdversary(kv);
  config.maxRoundsPerDecree = static_cast<Round>(
      kv.getU64("max-rounds", config.maxRoundsPerDecree));
  config.maxTicks = kv.getU64("max-ticks", config.maxTicks);
  config.paxosRetryMin = kv.getU64("paxos-retry-min", config.paxosRetryMin);
  config.paxosRetryMax = kv.getU64("paxos-retry-max", config.paxosRetryMax);
  config.raftElectionMin = kv.getU64("election-min", config.raftElectionMin);
  config.raftElectionMax = kv.getU64("election-max", config.raftElectionMax);
  config.raftHeartbeat = kv.getU64("heartbeat", config.raftHeartbeat);
  config.resubmitEvery = kv.getU64("resubmit-every", config.resubmitEvery);
  if (const auto rejected = validateEngine(config))
    throw std::invalid_argument(*rejected);
  return config;
}

}  // namespace ooc::svc

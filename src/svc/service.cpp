#include "svc/service.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace ooc::svc {

namespace {
/// Catch-up rounds before a recovering node gives up (the counter resets
/// whenever a round makes progress, so this only stops retries against a
/// drained or dead cluster — liveness there is out of the fault budget).
constexpr int kMaxCatchupTries = 6;
/// Retired engines are dropped once the undecided frontier is this far
/// past them (same straggler horizon as the sequential log).
constexpr std::uint64_t kRetireHorizon = 4;
}  // namespace

/// Per-decree view of the node's Context: wraps engine traffic in a
/// DecreeMessage envelope and redirects decide() to the decree
/// bookkeeping. The pipelined twin of the log's SlotContextImpl.
class SvcNode::DecreeContextImpl final : public Context {
 public:
  DecreeContextImpl(SvcNode& host, std::uint64_t decree) noexcept
      : host_(host), decree_(decree) {}

  ProcessId self() const noexcept override { return host_.ctx().self(); }
  std::size_t processCount() const noexcept override {
    return host_.ctx().processCount();
  }
  Tick now() const noexcept override { return host_.ctx().now(); }
  Rng& rng() noexcept override { return host_.ctx().rng(); }

  void send(ProcessId to, std::unique_ptr<Message> msg) override {
    post(to, MessagePtr(std::move(msg)));
  }
  void broadcast(const Message& msg) override {
    fanout(MessagePtr(msg.clone()));
  }
  void post(ProcessId to, MessagePtr msg) override {
    host_.ctx().post(to, makeMessage<DecreeMessage>(decree_, std::move(msg)));
  }
  void fanout(MessagePtr msg) override {
    host_.ctx().fanout(makeMessage<DecreeMessage>(decree_, std::move(msg)));
  }
  TimerId setTimer(Tick delay) override {
    const TimerId id = host_.ctx().setTimer(delay);
    host_.timerDecree_[id] = decree_;
    return id;
  }
  void cancelTimer(TimerId id) noexcept override {
    host_.timerDecree_.erase(id);
    host_.ctx().cancelTimer(id);
  }
  void decide(Value v) override { host_.onDecreeDecided(decree_, v); }

 private:
  SvcNode& host_;
  std::uint64_t decree_;
};

SvcNode::SvcNode(EngineFactory engineFactory, const WorkloadOptions& workload,
                 std::size_t n, std::uint64_t seed, SvcNodeOptions options)
    : engineFactory_(std::move(engineFactory)),
      options_(options),
      workload_(workload, /*node=*/0, n, seed) {
  // The workload must be homed at this node's id, which is only known once
  // bound; Process::bind happens before onStart, so rebuild it there.
  // (Workload construction is cheap; the throwaway above just validates.)
  if (options_.window == 0)
    throw std::invalid_argument("svc: window must be positive");
  if (options_.batchMax == 0)
    throw std::invalid_argument("svc: batchMax must be positive");
  if (options_.durable) {
    wal_ = std::make_unique<store::WriteAheadLog>(options_.storage);
  }
  workloadSeed_ = seed;
  workloadN_ = n;
  workloadOptions_ = workload;
}

SvcNode::~SvcNode() = default;

void SvcNode::persist(std::vector<std::uint64_t> record) {
  if (!wal_) return;
  wal_->append(record);
  if (options_.syncBeforeReply) wal_->sync();
}

Value SvcNode::mintCommand() {
  // The incarnation lives in bits 24..31 of the sequence half so ids can
  // never collide across restarts (a non-durable restart forgets cmdSeq_).
  ++cmdSeq_;
  if (cmdSeq_ >= (1u << 24))
    throw std::overflow_error("svc: command sequence exhausted");
  const std::uint32_t seq =
      (static_cast<std::uint32_t>(recoveries_ & 0xFF) << 24) | cmdSeq_;
  return makeCommand(ctx().self(), seq);
}

void SvcNode::onStart() {
  // Re-home the workload now that self() is known.
  workload_ = Workload(workloadOptions_, ctx().self(), workloadN_,
                       workloadSeed_);
  armArrivalTimer();
}

void SvcNode::onCrash() {
  if (wal_) wal_->crash(ctx().rng());
}

void SvcNode::onRestart() {
  ++recoveries_;
  // Drop every volatile structure. The workload object survives (its
  // calendar and caps persist across the restart — clients do not crash
  // with the replica), but commands in flight at the crash are gone unless
  // the journal remembers them.
  active_.clear();
  timerDecree_.clear();
  graveyard_.clear();
  decided_.clear();
  openProposals_.clear();
  announcedBinding_.clear();
  pendingCmds_.clear();
  arrivalTick_.clear();
  unassigned_.clear();
  batchStore_.clear();
  decreeLog_.clear();
  applied_.clear();
  appliedSet_.clear();
  committedBatches_.clear();
  commitTicks_.clear();
  latencies_.clear();
  batchSizes_.clear();
  noopDecrees_ = 0;
  dupSuppressed_ = 0;
  commitIndex_ = 0;
  firstUndecided_ = 0;
  nextOpen_ = 0;
  cmdSeq_ = 0;
  batchSeq_ = 0;
  arrivalTimer_ = 0;
  arrivalArmedFor_ = 0;
  fetchTimer_ = 0;
  catchupTimer_ = 0;
  catchupTries_ = 0;

  if (wal_) {
    recoverFromJournal();
    recovering_ = false;
  } else {
    // No journal: the previous incarnation may have voted anywhere, so
    // abstain from every decree until the first catch-up reply bounds the
    // damage (quarantine provisionally covers everything).
    recovering_ = true;
    quarantine_ = options_.maxDecrees;
  }
  OOC_TRACE("svc p", ctx().self(), " restarts: commit=", commitIndex_,
            " quarantine=", quarantine_, recovering_ ? " (recovering)" : "");
  armArrivalTimer();
  fireCatchup();
}

void SvcNode::recoverFromJournal() {
  std::vector<Value> minted;  // in mint order
  std::vector<Value> formed;  // in formation order
  std::unordered_set<Value> batched;
  std::uint64_t maxOpen = 0;
  for (const auto& record : wal_->recover()) {
    if (record.empty()) continue;
    switch (record[0]) {
      case kRecCmd: {
        if (record.size() < 2) break;
        minted.push_back(dec(record[1]));
        break;
      }
      case kRecBatch: {
        if (record.size() < 3) break;
        const Value id = dec(record[1]);
        const std::size_t n = static_cast<std::size_t>(record[2]);
        if (record.size() < 3 + n) break;
        std::vector<Value> cmds;
        cmds.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          cmds.push_back(dec(record[3 + i]));
          batched.insert(dec(record[3 + i]));
        }
        batchStore_[id] = std::move(cmds);
        formed.push_back(id);
        break;
      }
      case kRecOpen: {
        if (record.size() < 3) break;
        const std::uint64_t decree = record[1];
        maxOpen = std::max(maxOpen, decree + 1);
        // Echoed foreign batches were journaled as the open's proposal but
        // must not be adopted back: requeueing one on loss would bind it
        // to a second decree while its owner re-proposes it too.
        const Value proposal = dec(record[2]);
        if (proposal != kNoopBatch && batchNode(proposal) == ctx().self())
          openProposals_[decree] = proposal;
        break;
      }
      case kRecCommit: {
        if (record.size() < 4) break;
        const std::uint64_t decree = record[1];
        const Value batch = dec(record[2]);
        const std::size_t n = static_cast<std::size_t>(record[3]);
        if (record.size() < 4 + n || decree != decreeLog_.size()) break;
        decreeLog_.push_back(batch);
        openProposals_.erase(decree);
        if (batch == kNoopBatch) {
          ++noopDecrees_;
          break;
        }
        committedBatches_.insert(batch);
        for (std::size_t i = 0; i < n; ++i) {
          const Value cmd = dec(record[4 + i]);
          if (appliedSet_.insert(cmd).second) applied_.push_back(cmd);
        }
        break;
      }
      default:
        break;
    }
  }
  commitIndex_ = decreeLog_.size();
  firstUndecided_ = commitIndex_;
  // Minted commands that never made it into a batch go back to pending;
  // formed batches whose decree outcome is unknown stay parked in
  // openProposals_ (requeued on loss via catch-up), the rest requeue now.
  for (Value cmd : minted) {
    if (!batched.contains(cmd) && !appliedSet_.contains(cmd))
      pendingCmds_.push_back(cmd);
  }
  std::unordered_set<Value> awaiting;
  for (const auto& [decree, batch] : openProposals_) awaiting.insert(batch);
  for (Value batch : formed) {
    if (!committedBatches_.contains(batch) && !awaiting.contains(batch))
      unassigned_.push_back(batch);
  }
  // The journaled opens bound everything the previous incarnation can have
  // voted in; never re-enter those decrees with a fresh (amnesiac) engine.
  quarantine_ = std::max(maxOpen, commitIndex_);
  nextOpen_ = quarantine_;
}

// --- client arrivals -------------------------------------------------------

void SvcNode::armArrivalTimer() {
  const Tick now = ctx().now();
  const Tick next = workload_.nextArrivalTick(now);
  if (next == 0) return;
  if (arrivalTimer_ != 0) {
    if (arrivalArmedFor_ <= next) return;  // an earlier firing covers it
    ctx().cancelTimer(arrivalTimer_);
  }
  arrivalArmedFor_ = next;
  arrivalTimer_ = ctx().setTimer(next - now);
}

void SvcNode::handleArrivals() {
  arrivalTimer_ = 0;
  const Tick now = ctx().now();
  for (const Arrival& arrival : workload_.collect(now)) {
    (void)arrival;  // client/key shape the draw; the command is the unit
    const Value cmd = mintCommand();
    pendingCmds_.push_back(cmd);
    arrivalTick_[cmd] = now;
    persist({kRecCmd, enc(cmd)});
  }
  armArrivalTimer();
  formAndOpen();
}

// --- decree pipeline -------------------------------------------------------

Value SvcNode::takeProposal(std::uint64_t decree) {
  if (!unassigned_.empty()) {
    // Re-proposal after a loss: re-announce under the NEW decree binding
    // so joiners echo it there (peers already hold the payload, but the
    // binding is what keeps the batch live against no-op quorums).
    const Value batch = unassigned_.front();
    unassigned_.pop_front();
    ctx().fanout(makeMessage<BatchAnnounce>(batch, batchStore_[batch],
                                            decree));
    return batch;
  }
  const std::size_t take = std::min(options_.batchMax, pendingCmds_.size());
  if (take == 0) {
    // Nothing of our own: echo the batch an announce bound to this decree,
    // if any — joining with the owner's proposal instead of a no-op is
    // what lets a lone proposer win against reactive joiners.
    const auto bound = announcedBinding_.find(decree);
    if (bound != announcedBinding_.end() &&
        !committedBatches_.contains(bound->second) &&
        batchStore_.contains(bound->second)) {
      return bound->second;
    }
    return kNoopBatch;
  }
  ++batchSeq_;
  const std::uint32_t seq =
      (static_cast<std::uint32_t>(recoveries_ & 0xFF) << 24) | batchSeq_;
  const Value id = makeBatchId(ctx().self(), seq);
  std::vector<Value> cmds(pendingCmds_.begin(),
                          pendingCmds_.begin() +
                              static_cast<std::ptrdiff_t>(take));
  pendingCmds_.erase(pendingCmds_.begin(),
                     pendingCmds_.begin() +
                         static_cast<std::ptrdiff_t>(take));
  std::vector<std::uint64_t> record{kRecBatch, enc(id), take};
  for (Value cmd : cmds) record.push_back(enc(cmd));
  persist(std::move(record));
  batchStore_[id] = cmds;
  ctx().fanout(makeMessage<BatchAnnounce>(id, std::move(cmds), decree));
  return id;
}

void SvcNode::formAndOpen() {
  if (recovering_) return;
  // The window is anchored at the undecided frontier — or, right after a
  // recovery, at the quarantine boundary (the node re-enters the log there
  // while catch-up fills the decrees below).
  const std::uint64_t base = std::max(firstUndecided_, quarantine_);
  while (nextOpen_ < options_.maxDecrees &&
         nextOpen_ < base + options_.window &&
         (!unassigned_.empty() || !pendingCmds_.empty())) {
    openDecree(nextOpen_);
  }
}

void SvcNode::openThrough(std::uint64_t decree) {
  // Reactive joins bypass the window but stay contiguous, so every decree
  // between the frontier and the triggering traffic gets this node's
  // participation (with real work if any is pending, else a no-op).
  while (nextOpen_ <= decree && nextOpen_ < options_.maxDecrees)
    openDecree(nextOpen_);
}

void SvcNode::openDecree(std::uint64_t decree) {
  const Value proposal = takeProposal(decree);
  persist({kRecOpen, decree, enc(proposal)});
  // Only OWN batches enter openProposals_ (echoed foreign ones are the
  // owner's to requeue — see the header's double-win note).
  if (proposal != kNoopBatch && batchNode(proposal) == ctx().self())
    openProposals_[decree] = proposal;
  ActiveDecree slot;
  slot.context = std::make_unique<DecreeContextImpl>(*this, decree);
  slot.engine = engineFactory_(decree, proposal, proposal != kNoopBatch);
  slot.engine->bind(*slot.context);
  Process* engine = slot.engine.get();
  active_.emplace(decree, std::move(slot));
  nextOpen_ = std::max(nextOpen_, decree + 1);
  OOC_TRACE("svc p", ctx().self(), " opens decree ", decree, " proposing ",
            proposal);
  engine->onStart();
}

void SvcNode::handleDecreeTraffic(ProcessId from,
                                  const DecreeMessage& envelope) {
  const std::uint64_t decree = envelope.decree();
  if (decree >= options_.maxDecrees) return;
  if (recovering_ || decree < quarantine_) {
    // The previous incarnation may have voted here; abstain (the outcome
    // arrives via catch-up, and the fault budget covers our absence).
    return;
  }
  auto it = active_.find(decree);
  if (it == active_.end()) {
    if (decree < nextOpen_) {
      // Decided and pruned here. The sender is a straggler whose engine
      // lost its quorum partners — tell it the outcome from our applied
      // log or it ballots forever (its retries bound the chatter, and
      // learning the outcome is what stops them).
      if (decree < commitIndex_ && from != ctx().self())
        ctx().post(from, makeMessage<DecreeOutcome>(decree,
                                                    decreeLog_[decree]));
      return;
    }
    openThrough(decree);
    it = active_.find(decree);
    if (it == active_.end()) return;
  }
  it->second.engine->onMessage(from, envelope.inner());
}

void SvcNode::onDecreeDecided(std::uint64_t decree, Value winner) {
  recordDecided(decree, winner);
  applyReady();
  pruneRetired();
  formAndOpen();
}

void SvcNode::recordDecided(std::uint64_t decree, Value winner) {
  if (decree < commitIndex_) return;  // already applied
  if (!decided_.emplace(decree, winner).second) return;  // already known
  OOC_TRACE("svc p", ctx().self(), " decree ", decree, " -> ", winner);
  announcedBinding_.erase(decree);
  // If our batch lost this decree, it fights again in a later one. (It can
  // never win two: re-proposal happens strictly after the loss is known.)
  const auto mine = openProposals_.find(decree);
  if (mine != openProposals_.end()) {
    if (mine->second != winner && !committedBatches_.contains(mine->second))
      unassigned_.push_back(mine->second);
    openProposals_.erase(mine);
  }
  while (decided_.contains(firstUndecided_)) ++firstUndecided_;
}

void SvcNode::applyReady() {
  bool progressed = false;
  for (;;) {
    const auto it = decided_.find(commitIndex_);
    if (it == decided_.end()) break;
    const Value batch = it->second;
    const auto payload =
        batch == kNoopBatch ? batchStore_.end() : batchStore_.find(batch);
    if (batch != kNoopBatch && payload == batchStore_.end()) {
      requestMissingBatch(batch);  // head-of-line blocked on the payload
      break;
    }
    decided_.erase(it);
    const Tick now = ctx().now();
    decreeLog_.push_back(batch);
    commitTicks_.push_back(now);
    std::vector<std::uint64_t> record{kRecCommit, commitIndex_, enc(batch)};
    if (batch == kNoopBatch) {
      ++noopDecrees_;
      record.push_back(0);
    } else {
      committedBatches_.insert(batch);
      const std::vector<Value>& cmds = payload->second;
      batchSizes_.push_back(static_cast<std::uint32_t>(cmds.size()));
      record.push_back(cmds.size());
      for (Value cmd : cmds) {
        record.push_back(enc(cmd));
        if (!appliedSet_.insert(cmd).second) {
          ++dupSuppressed_;
          continue;
        }
        applied_.push_back(cmd);
        if (commandNode(cmd) == ctx().self()) {
          const auto arrived = arrivalTick_.find(cmd);
          if (arrived != arrivalTick_.end()) {
            latencies_.push_back(now - arrived->second);
            arrivalTick_.erase(arrived);
          }
          workload_.onCommit(now);  // closed-loop client thinks, re-arrives
        }
      }
    }
    persist(std::move(record));
    ++commitIndex_;
    firstUndecided_ = std::max(firstUndecided_, commitIndex_);
    progressed = true;
  }
  if (progressed) {
    armArrivalTimer();
    // Still below the quarantine: catch-up is the only transport for the
    // remaining outcomes, so keep rounds coming while they make progress.
    if (commitIndex_ < quarantine_ && !recovering_ && catchupTimer_ == 0) {
      catchupTries_ = 0;
      catchupTimer_ = ctx().setTimer(options_.catchupRetry);
    }
  }
}

void SvcNode::requestMissingBatch(Value batchId) {
  if (fetchTimer_ != 0) return;  // one head-of-line fetch at a time
  ctx().fanout(makeMessage<BatchFetch>(batchId));
  fetchTimer_ = ctx().setTimer(options_.fetchRetry);
}

void SvcNode::pruneRetired() {
  // Engines park in the graveyard until the next top-level event: the
  // pruning call may sit below the pruned engine's own handler frame.
  while (!active_.empty() &&
         active_.begin()->first + kRetireHorizon <= firstUndecided_) {
    graveyard_.push_back(std::move(active_.begin()->second));
    active_.erase(active_.begin());
  }
}

// --- catch-up --------------------------------------------------------------

void SvcNode::fireCatchup() {
  if (!recovering_ && commitIndex_ >= quarantine_) return;  // caught up
  if (catchupTries_ >= kMaxCatchupTries) return;
  ++catchupTries_;
  ctx().fanout(makeMessage<CatchupRequest>(commitIndex_));
  catchupTimer_ = ctx().setTimer(options_.catchupRetry);
}

void SvcNode::replyCatchup(ProcessId to, std::uint64_t fromDecree) {
  if (fromDecree >= decreeLog_.size()) return;  // nothing they lack
  std::vector<Value> decrees(decreeLog_.begin() +
                                 static_cast<std::ptrdiff_t>(fromDecree),
                             decreeLog_.end());
  std::vector<std::pair<Value, std::vector<Value>>> batches;
  for (Value batch : decrees) {
    if (batch == kNoopBatch) continue;
    const auto payload = batchStore_.find(batch);
    if (payload != batchStore_.end())
      batches.emplace_back(batch, payload->second);
  }
  ctx().post(to, makeMessage<CatchupReply>(fromDecree, std::move(decrees),
                                           std::move(batches)));
}

void SvcNode::mergeCatchup(const CatchupReply& reply) {
  for (const auto& [id, cmds] : reply.batches()) batchStore_.emplace(id, cmds);
  if (recovering_) {
    // First reply after a non-durable restart: the responder's applied
    // prefix plus the pipeline depth bounds how far our previous
    // incarnation can have participated (its opens trailed the cluster's
    // applied frontier by at most window on each side).
    recovering_ = false;
    const std::uint64_t horizon = reply.fromDecree() + reply.decrees().size();
    quarantine_ = std::min(options_.maxDecrees,
                           horizon + 2 * options_.window + 2);
    nextOpen_ = std::max(nextOpen_, quarantine_);
  }
  std::uint64_t decree = reply.fromDecree();
  for (Value winner : reply.decrees()) recordDecided(decree++, winner);
  applyReady();
  pruneRetired();
  formAndOpen();
}

// --- event plumbing --------------------------------------------------------

void SvcNode::onMessage(ProcessId from, const Message& message) {
  graveyard_.clear();
  if (const auto* envelope = message.as<DecreeMessage>()) {
    handleDecreeTraffic(from, *envelope);
    return;
  }
  if (const auto* announce = message.as<BatchAnnounce>()) {
    batchStore_.emplace(announce->batchId(), announce->commands());
    // Remember the binding for a decree we have not joined yet: if we open
    // it with nothing of our own, we echo this batch instead of a no-op.
    // First binding wins when two owners race for the same decree.
    if (announce->bindingDecree() != kNoBinding &&
        announce->bindingDecree() >= nextOpen_ &&
        announce->bindingDecree() >= quarantine_ && !recovering_) {
      announcedBinding_.emplace(announce->bindingDecree(),
                                announce->batchId());
    }
    applyReady();  // may unblock a head-of-line fetch
    return;
  }
  if (const auto* outcome = message.as<DecreeOutcome>()) {
    // Straggler rescue: the replier's applied log is final, so the
    // outcome can be recorded as if our engine had decided — even for a
    // quarantined decree (learning is not participating; catch-up feeds
    // recordDecided the same way).
    recordDecided(outcome->decree(), outcome->winner());
    applyReady();
    pruneRetired();
    formAndOpen();
    return;
  }
  if (const auto* fetch = message.as<BatchFetch>()) {
    const auto payload = batchStore_.find(fetch->batchId());
    if (payload != batchStore_.end()) {
      // No binding on fetch replies: the batch is typically decided
      // already, so echoing it anywhere would be wrong.
      ctx().post(from, makeMessage<BatchAnnounce>(fetch->batchId(),
                                                  payload->second));
    }
    return;
  }
  if (const auto* request = message.as<CatchupRequest>()) {
    if (from != ctx().self()) replyCatchup(from, request->fromDecree());
    return;
  }
  if (const auto* reply = message.as<CatchupReply>()) {
    mergeCatchup(*reply);
    return;
  }
}

void SvcNode::onTimer(TimerId id) {
  graveyard_.clear();
  if (id == arrivalTimer_) {
    handleArrivals();
    return;
  }
  if (id == fetchTimer_) {
    fetchTimer_ = 0;
    applyReady();  // re-requests if the payload is still missing
    return;
  }
  if (id == catchupTimer_) {
    catchupTimer_ = 0;
    fireCatchup();
    return;
  }
  const auto owner = timerDecree_.find(id);
  if (owner == timerDecree_.end()) return;
  const std::uint64_t decree = owner->second;
  timerDecree_.erase(owner);
  const auto engine = active_.find(decree);
  if (engine != active_.end()) engine->second.engine->onTimer(id);
}

void SvcNode::onTick(Tick tick) {
  graveyard_.clear();
  std::vector<std::uint64_t> decrees;
  decrees.reserve(active_.size());
  for (const auto& [decree, unused] : active_) decrees.push_back(decree);
  for (const std::uint64_t decree : decrees) {
    const auto engine = active_.find(decree);
    if (engine != active_.end()) engine->second.engine->onTick(tick);
  }
}

std::uint64_t SvcNode::inFlight() const noexcept {
  return arrivalTick_.size();
}

}  // namespace ooc::svc

// The multi-decree replicated-log SERVICE: the pipelined, batched,
// client-driven generalization of log::ReplicatedLogNode (which decides
// one slot at a time with a fixed command queue). Every decree is still
// one instance of a pluggable single-shot consensus engine — the paper's
// generic template with any registered detector/driver pair, or a
// PaxosNode — hosted behind a per-decree Context adapter exactly like the
// sequential log. What the service layer adds:
//
//  * Pipelining. A node may open decree k+1 while decree k is still
//    settling, up to `window` decrees beyond its lowest undecided decree
//    (multi-Paxos-style). Opens are always CONTIGUOUS: traffic for a
//    not-yet-opened decree makes the node open everything up to it, so a
//    quorum forms for every decree even at nodes with nothing to propose.
//  * Batching. Client commands are packed into batches of up to
//    `batchMax`; the 64-bit consensus Value carries the BATCH ID, and the
//    payload travels out-of-band (BatchAnnounce at formation, BatchFetch
//    for nodes that must apply a batch they never received). A batch that
//    loses its decree is re-proposed in a later one; a batch is re-proposed
//    only after its decree's outcome is known, so no batch can ever win two
//    decrees. Each announce BINDS the batch to the decree it is proposed
//    in, and a node joining that decree with nothing of its own ECHOES the
//    bound batch instead of a no-op — otherwise a lone proposer starves
//    under fixed-delay schedules (the no-op joiners' driver quorums close
//    among themselves and decide no-op forever). The echo cannot make a
//    batch win twice: a joiner never re-proposes a foreign batch, and the
//    owner re-binds only after the old decree decided against it, at which
//    point that decree's outcome is fixed by consensus agreement.
//  * Client traffic. Commands arrive from a deterministic Workload
//    (closed- or open-loop, zipfian keys); arrivals are timer-driven, so
//    the service runs under the plain asynchronous scheduler. Commits feed
//    back into the closed loop.
//  * Idle detection. Decrees are opened proactively only when there is
//    work (a pending command or an unassigned batch) and reactively only
//    on peer traffic, so a drained cluster quiesces and the simulator's
//    event queue runs dry — same discipline as the sequential log.
//
// Durability and recovery (the PR 3 persistence discipline mapped onto the
// log). With `durable`, the node journals four record kinds to a
// store::WriteAheadLog — command minted, batch formed, decree opened,
// decree committed — syncing per `syncBeforeReply`. On restart it replays
// the journal and then CATCHES UP: it fans out a CatchupRequest and peers
// reply with their applied prefix plus the batch payloads it needs.
//
// The safety subtlety is re-joining in-flight decrees: the engines
// themselves are volatile (a restarted Ben-Or or Paxos participant has
// forgotten its votes and promises), so a recovered node must NOT
// re-enter any decree its previous incarnation may have participated in.
// The journaled opens give the exact boundary (`quarantine`): the node
// abstains from every decree below it and learns those outcomes through
// catch-up, while the fault budget t covers its absence. A non-durable
// restart has no journal, so the node abstains from everything until the
// first catch-up reply and then derives a conservative boundary from the
// responder's applied prefix plus the pipeline depth. As with the Paxos
// node, `syncBeforeReply = false` deliberately re-opens the
// crash-before-sync window (a truncated journal under-estimates the
// quarantine) — that is the fault surface the checker explores, not a bug.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "log/replicated_log.hpp"
#include "sim/process.hpp"
#include "store/wal.hpp"
#include "svc/messages.hpp"
#include "svc/workload.hpp"

namespace ooc::svc {

// Command ids reuse the sequential log's packing; the home node lives in
// the high half so audits can attribute commands across layers.
using log::commandNode;
using log::kNoopCommand;
using log::makeCommand;

/// The reserved "empty decree" value decided when no batch wins.
inline constexpr Value kNoopBatch = 0;

/// Packs (node, sequence) into a globally unique batch id. Bit 62 keeps
/// batch ids disjoint from command ids, which share the packing below it.
constexpr Value makeBatchId(ProcessId node, std::uint32_t seq) noexcept {
  return static_cast<Value>((std::uint64_t{1} << 62) |
                            (static_cast<std::uint64_t>(node + 1) << 32) |
                            seq);
}
constexpr ProcessId batchNode(Value batchId) noexcept {
  return static_cast<ProcessId>(
             (static_cast<std::uint64_t>(batchId) >> 32) & 0x3FFFFFFFu) -
         1;
}

/// Builds the single-shot consensus engine for one decree. `proposal` is
/// the batch id this node puts forward (kNoopBatch when it joins the
/// decree reactively with nothing to propose); `proposer` mirrors
/// `proposal != kNoopBatch` so engine families with an active/passive
/// distinction (Paxos) can gate their ballot drivers on it. Randomized
/// engines MUST mix the decree into their seeds (see the sequential log's
/// livelock note on SlotDriverFactory).
using EngineFactory = std::function<std::unique_ptr<Process>(
    std::uint64_t decree, Value proposal, bool proposer)>;

struct SvcNodeOptions {
  /// Pipeline depth: decrees this node may open beyond its lowest
  /// undecided decree. 1 degenerates to the sequential log's discipline.
  std::uint64_t window = 2;
  /// Maximum client commands packed into one batch.
  std::size_t batchMax = 4;
  /// Upper bound on decrees, as a runaway guard.
  std::uint64_t maxDecrees = 10000;
  /// Retry period for fetching a missing batch payload.
  Tick fetchRetry = 32;
  /// Retry period for restart catch-up rounds.
  Tick catchupRetry = 64;
  /// Journal commands/batches/opens/commits to a write-ahead log.
  bool durable = false;
  /// Sync the journal inside persist() (the safe discipline); false
  /// re-opens the crash-before-sync window on purpose.
  bool syncBeforeReply = true;
  /// Storage fault injection applied when a crash hits the journal.
  store::FaultConfig storage;
};

class SvcNode final : public Process {
 public:
  SvcNode(EngineFactory engineFactory, const WorkloadOptions& workload,
          std::size_t n, std::uint64_t seed, SvcNodeOptions options);
  ~SvcNode() override;

  void onStart() override;
  void onRestart() override;
  void onCrash() override;
  void onMessage(ProcessId from, const Message& message) override;
  void onTimer(TimerId id) override;
  void onTick(Tick tick) override;

  // --- observation (used by runSvc audits and metrics) ---

  /// Applied batch id per decree, in decree order (kNoopBatch for empty
  /// decrees). Cleared by a restart and rebuilt from journal + catch-up.
  const std::vector<Value>& decreeLog() const noexcept { return decreeLog_; }
  /// Applied client commands flattened in decree order (no-ops excluded).
  const std::vector<Value>& applied() const noexcept { return applied_; }
  /// Tick at which each live apply happened (journal replays excluded).
  const std::vector<Tick>& commitTicks() const noexcept {
    return commitTicks_;
  }
  /// Arrival-to-apply latency of this node's own commands, in ticks.
  const std::vector<Tick>& latencies() const noexcept { return latencies_; }
  /// Applied non-noop batch sizes.
  const std::vector<std::uint32_t>& batchSizes() const noexcept {
    return batchSizes_;
  }
  std::uint64_t commitIndex() const noexcept { return commitIndex_; }
  std::uint64_t noopDecrees() const noexcept { return noopDecrees_; }
  /// Commands whose second apply was suppressed (must stay 0: a batch is
  /// re-proposed only after it provably lost its decree).
  std::uint64_t duplicatesSuppressed() const noexcept {
    return dupSuppressed_;
  }
  std::uint64_t recoveries() const noexcept { return recoveries_; }
  const Workload& workload() const noexcept { return workload_; }
  const store::WriteAheadLog* wal() const noexcept { return wal_.get(); }
  /// Commands minted but not yet applied here (in a pending queue, an
  /// unassigned batch, or an in-flight decree).
  std::uint64_t inFlight() const noexcept;

 private:
  class DecreeContextImpl;
  struct ActiveDecree {
    std::unique_ptr<DecreeContextImpl> context;
    std::unique_ptr<Process> engine;
  };

  // Journal record tags (first word of each record).
  enum : std::uint64_t {
    kRecCmd = 1,     ///< {tag, command}
    kRecBatch = 2,   ///< {tag, batchId, n, commands...}
    kRecOpen = 3,    ///< {tag, decree, proposal}
    kRecCommit = 4,  ///< {tag, decree, batchId, n, commands...}
  };

  static std::uint64_t enc(Value v) noexcept {
    return static_cast<std::uint64_t>(v);
  }
  static Value dec(std::uint64_t w) noexcept {
    return static_cast<Value>(w);
  }

  void persist(std::vector<std::uint64_t> record);
  void recoverFromJournal();

  Value mintCommand();
  void handleArrivals();
  void armArrivalTimer();

  Value takeProposal(std::uint64_t decree);
  void formAndOpen();
  void openThrough(std::uint64_t decree);
  void openDecree(std::uint64_t decree);

  void handleDecreeTraffic(ProcessId from, const DecreeMessage& envelope);
  void onDecreeDecided(std::uint64_t decree, Value winner);
  void recordDecided(std::uint64_t decree, Value winner);
  void applyReady();
  void requestMissingBatch(Value batchId);
  void pruneRetired();
  void fireCatchup();
  void replyCatchup(ProcessId to, std::uint64_t fromDecree);
  void mergeCatchup(const CatchupReply& reply);

  EngineFactory engineFactory_;
  SvcNodeOptions options_;
  /// Workload construction parameters, kept so onStart can re-home the
  /// generator at the node id (unknown until bound).
  WorkloadOptions workloadOptions_;
  std::size_t workloadN_ = 0;
  std::uint64_t workloadSeed_ = 0;
  Workload workload_;

  // --- command/batch minting ---
  std::uint32_t cmdSeq_ = 0;    ///< per-incarnation (see mintCommand)
  std::uint32_t batchSeq_ = 0;  ///< per-incarnation
  std::deque<Value> pendingCmds_;
  /// Own command -> arrival tick, for latency accounting (volatile).
  std::unordered_map<Value, Tick> arrivalTick_;
  /// Formed batches awaiting (re-)proposal.
  std::deque<Value> unassigned_;
  /// Batch id -> payload; retained after apply to serve fetch/catch-up.
  std::unordered_map<Value, std::vector<Value>> batchStore_;

  // --- decree pipeline ---
  std::map<std::uint64_t, ActiveDecree> active_;
  std::map<TimerId, std::uint64_t> timerDecree_;
  /// Decided but not yet applied (applies are strictly in decree order).
  std::map<std::uint64_t, Value> decided_;
  /// Decree -> the OWN batch this node proposed there; consumed when the
  /// outcome is known (requeued on loss). Survives restarts via kRecOpen.
  /// Echoed foreign batches never enter: requeueing one would bind it to
  /// two decrees at once, the exact double-win the discipline rules out.
  std::map<std::uint64_t, Value> openProposals_;
  /// Decree -> batch an announce bound to it (first binding wins); a node
  /// opening the decree with no work of its own echoes this instead of a
  /// no-op. Volatile: after a restart the echo is simply unavailable.
  std::map<std::uint64_t, Value> announcedBinding_;
  std::uint64_t firstUndecided_ = 0;
  std::uint64_t nextOpen_ = 0;
  std::uint64_t commitIndex_ = 0;  ///< next decree to apply
  /// Engines pruned mid-handler park here until the next top-level event
  /// (the pruning call may sit below the pruned engine's own frame).
  std::vector<ActiveDecree> graveyard_;

  // --- applied state ---
  std::vector<Value> decreeLog_;
  std::vector<Value> applied_;
  std::unordered_set<Value> appliedSet_;
  std::unordered_set<Value> committedBatches_;
  std::vector<Tick> commitTicks_;
  std::vector<Tick> latencies_;
  std::vector<std::uint32_t> batchSizes_;
  std::uint64_t noopDecrees_ = 0;
  std::uint64_t dupSuppressed_ = 0;

  // --- timers ---
  TimerId arrivalTimer_ = 0;
  Tick arrivalArmedFor_ = 0;
  TimerId fetchTimer_ = 0;
  TimerId catchupTimer_ = 0;
  int catchupTries_ = 0;

  // --- durability + recovery ---
  std::unique_ptr<store::WriteAheadLog> wal_;
  /// Decrees below this may hold the previous incarnation's votes; the
  /// node never hosts engines for them (outcomes arrive via catch-up).
  std::uint64_t quarantine_ = 0;
  /// Non-durable restart: abstain from everything until the first
  /// catch-up reply supplies a conservative quarantine.
  bool recovering_ = false;
  std::uint64_t recoveries_ = 0;
};

}  // namespace ooc::svc

#include "svc/raft_log.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace ooc::svc {

RaftLogNode::RaftLogNode(RaftLogOptions options,
                         const WorkloadOptions& workload, std::size_t n,
                         std::uint64_t seed)
    : raft::RaftProcess(options.raft),
      workloadOptions_(workload),
      workloadN_(n),
      workloadSeed_(seed),
      workload_(workload, /*node=*/0, n, seed),
      resubmitEvery_(std::max<Tick>(1, options.resubmitEvery)) {}

Value RaftLogNode::mintCommand() {
  ++cmdSeq_;
  if (cmdSeq_ >= (1u << 24))
    throw std::overflow_error("svc: command sequence exhausted");
  const std::uint32_t seq =
      (static_cast<std::uint32_t>(recoveries() & 0xFF) << 24) | cmdSeq_;
  return makeCommand(ctx().self(), seq);
}

void RaftLogNode::onStart() {
  workload_ = Workload(workloadOptions_, ctx().self(), workloadN_,
                       workloadSeed_);
  raft::RaftProcess::onStart();
  armArrivalTimer();
  resubmitTimer_ = ctx().setTimer(resubmitEvery_);
}

void RaftLogNode::onVolatileReset() {
  // Called by the base class at the top of onRestart, before the journal
  // replay re-applies the recovered prefix under the new incarnation.
  cmdSeq_ = 0;
  pendingLocal_.clear();
  arrivalTick_.clear();
  applied_.clear();
  appliedSet_.clear();
  commitTicks_.clear();
  latencies_.clear();
  batchSizes_.clear();
  dupSuppressed_ = 0;
  noopsApplied_ = 0;
  lastBatchCommit_ = 0;
  arrivalTimer_ = 0;
  arrivalArmedFor_ = 0;
  resubmitTimer_ = 0;
  // leaderEvents_ survives: it is the cross-incarnation failover record.
}

void RaftLogNode::onRestart() {
  replaying_ = true;
  raft::RaftProcess::onRestart();
  replaying_ = false;
  armArrivalTimer();
  resubmitTimer_ = ctx().setTimer(resubmitEvery_);
}

void RaftLogNode::armArrivalTimer() {
  const Tick now = ctx().now();
  const Tick next = workload_.nextArrivalTick(now);
  if (next == 0) return;
  if (arrivalTimer_ != 0) {
    if (arrivalArmedFor_ <= next) return;
    ctx().cancelTimer(arrivalTimer_);
  }
  arrivalArmedFor_ = next;
  arrivalTimer_ = ctx().setTimer(next - now);
}

void RaftLogNode::handleArrivals() {
  arrivalTimer_ = 0;
  const Tick now = ctx().now();
  std::vector<Value> fresh;
  for (const Arrival& arrival : workload_.collect(now)) {
    (void)arrival;
    const Value cmd = mintCommand();
    pendingLocal_.push_back(cmd);
    arrivalTick_[cmd] = now;
    fresh.push_back(cmd);
  }
  armArrivalTimer();
  if (fresh.empty()) return;
  offerCommands(fresh);
  if (role() != raft::Role::kLeader)
    ctx().fanout(makeMessage<CmdForward>(std::move(fresh)));
}

void RaftLogNode::offerCommands(const std::vector<Value>& commands) {
  if (role() != raft::Role::kLeader) return;
  // Dedup against the applied prefix and the retained log suffix (the
  // compacted prefix is applied by definition). Failover retries can still
  // slip a duplicate past this — a prior leader's append may be committed
  // but not yet visible here — which is exactly what the apply-level dedup
  // is for.
  std::unordered_set<Value> inLog;
  for (const raft::LogEntry& entry : log()) inLog.insert(entry.command);
  for (Value cmd : commands) {
    if (appliedSet_.contains(cmd) || inLog.contains(cmd)) continue;
    submit(cmd);
    inLog.insert(cmd);
  }
}

void RaftLogNode::resubmitUnapplied() {
  resubmitTimer_ = ctx().setTimer(resubmitEvery_);
  while (!pendingLocal_.empty() && appliedSet_.contains(pendingLocal_.front()))
    pendingLocal_.pop_front();
  if (pendingLocal_.empty()) return;
  std::vector<Value> unapplied;
  for (Value cmd : pendingLocal_)
    if (!appliedSet_.contains(cmd)) unapplied.push_back(cmd);
  if (unapplied.empty()) return;
  offerCommands(unapplied);
  if (role() != raft::Role::kLeader)
    ctx().fanout(makeMessage<CmdForward>(std::move(unapplied)));
}

void RaftLogNode::onMessage(ProcessId from, const Message& message) {
  if (const auto* forward = message.as<CmdForward>()) {
    if (from != ctx().self()) offerCommands(forward->commands());
    return;
  }
  raft::RaftProcess::onMessage(from, message);
}

void RaftLogNode::onTimer(TimerId id) {
  if (id == arrivalTimer_) {
    handleArrivals();
    return;
  }
  if (id == resubmitTimer_) {
    resubmitUnapplied();
    return;
  }
  raft::RaftProcess::onTimer(id);
}

void RaftLogNode::onApply(raft::LogIndex index, const raft::LogEntry& entry) {
  (void)index;
  const Value cmd = entry.command;
  if (cmd == log::kNoopCommand) {
    // Leader-barrier entry (leaderBarrier below): ordered but not a client
    // command — never enters the service-level applied log.
    ++noopsApplied_;
    return;
  }
  if (!appliedSet_.insert(cmd).second) {
    ++dupSuppressed_;
    return;
  }
  applied_.push_back(cmd);
  const Tick now = ctx().now();
  commitTicks_.push_back(now);
  if (commandNode(cmd) == ctx().self()) {
    const auto arrived = arrivalTick_.find(cmd);
    if (arrived != arrivalTick_.end()) {
      latencies_.push_back(now - arrived->second);
      arrivalTick_.erase(arrived);
    }
    if (!replaying_) {
      workload_.onCommit(now);
      armArrivalTimer();
    }
  }
}

std::optional<Value> RaftLogNode::leaderBarrier() const {
  // The submit-side dedup in offerCommands makes the Raft §8 stall real
  // here: a new leader holding the stalled commands as prior-term entries
  // skips every re-offer of them, so without this barrier no current-term
  // entry would ever be appended and the tail would never commit.
  return log::kNoopCommand;
}

bool RaftLogNode::drained() const noexcept {
  for (Value cmd : pendingLocal_)
    if (!appliedSet_.contains(cmd)) return false;
  // No future arrival is scheduled. This deliberately also covers a
  // closed-loop client stalled on a command the crash erased before
  // replication (nothing will ever unstall it): the run should end, and
  // the termination audit already exempts faulty runs from full delivery.
  return workload_.nextArrivalTick(ctx().now()) == 0;
}

void RaftLogNode::onBecameLeader() {
  leaderEvents_.push_back({ctx().now(), currentTerm()});
  OOC_TRACE("svc-raft p", ctx().self(), " leads term ", currentTerm());
  // A fresh leader immediately appends everything it knows is unapplied —
  // its own pending commands; forwarded ones re-arrive via peers' retries.
  std::vector<Value> unapplied;
  for (Value cmd : pendingLocal_)
    if (!appliedSet_.contains(cmd)) unapplied.push_back(cmd);
  offerCommands(unapplied);
}

void RaftLogNode::onCommitAdvanced() {
  const raft::LogIndex now = commitIndex();
  if (now > lastBatchCommit_) {
    batchSizes_.push_back(static_cast<std::uint32_t>(now - lastBatchCommit_));
    lastBatchCommit_ = now;
  }
}

}  // namespace ooc::svc

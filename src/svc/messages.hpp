// Wire types of the multi-decree service: the decree envelope around
// consensus-engine traffic, batch-payload dissemination, and the restart
// catch-up protocol.
//
// Decrees carry batch IDS through consensus, not batch contents — the
// library's consensus Value is 64 bits, so the payload (the batched client
// commands) travels out-of-band: the proposer fanouts a BatchAnnounce when
// it forms the batch, and any node that must apply a batch it never
// received fetches it (BatchFetch -> BatchAnnounce reply). This is the
// standard Multi-Paxos separation of ordering from dissemination.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "util/types.hpp"

namespace ooc::svc {

/// Decree-number envelope around consensus-engine traffic (the pipelined
/// generalization of log::SlotMessage). The inner payload is shared:
/// forwarding the envelope adds a ref, never a copy.
class DecreeMessage final : public MessageBase<DecreeMessage> {
 public:
  DecreeMessage(std::uint64_t decree, MessagePtr inner)
      : decree_(decree), inner_(std::move(inner)) {}

  std::uint64_t decree() const noexcept { return decree_; }
  const Message& inner() const noexcept { return *inner_; }
  const MessagePtr& innerPtr() const noexcept { return inner_; }

  std::string describe() const override {
    return "[decree " + std::to_string(decree_) + "] " + inner_->describe();
  }

 private:
  std::uint64_t decree_;
  MessagePtr inner_;
};

/// "This announce carries no decree binding" (fetch replies: the batch may
/// already be decided, so echoing it anywhere would be wrong).
inline constexpr std::uint64_t kNoBinding = ~std::uint64_t{0};

/// Batch payload dissemination: the proposer fanouts this when it proposes
/// the batch; it doubles as the reply to a BatchFetch. `bindingDecree`
/// names the decree the owner is proposing the batch in, so nodes that
/// join that decree with nothing of their own can ECHO the batch instead
/// of a no-op (the leaderless analogue of voting for the announced client
/// command). Without the echo, a lone proposer starves under fixed-delay
/// schedules: the no-op joiners' lottery quorums deterministically close
/// among themselves and decide no-op forever.
class BatchAnnounce final : public MessageBase<BatchAnnounce> {
 public:
  BatchAnnounce(Value batchId, std::vector<Value> commands,
                std::uint64_t bindingDecree = kNoBinding)
      : batchId_(batchId),
        commands_(std::move(commands)),
        bindingDecree_(bindingDecree) {}

  Value batchId() const noexcept { return batchId_; }
  const std::vector<Value>& commands() const noexcept { return commands_; }
  std::uint64_t bindingDecree() const noexcept { return bindingDecree_; }

  std::string describe() const override {
    return "BatchAnnounce{batch=" + std::to_string(batchId_) +
           ", cmds=" + std::to_string(commands_.size()) +
           (bindingDecree_ == kNoBinding
                ? "}"
                : ", decree=" + std::to_string(bindingDecree_) + "}");
  }

 private:
  Value batchId_;
  std::vector<Value> commands_;
  std::uint64_t bindingDecree_;
};

/// Straggler rescue: sent in reply to consensus traffic for a decree the
/// receiver has already applied and pruned. Without it a node whose
/// engine lost its quorum partners (they decided, advanced past the
/// retire horizon, and now drop the decree's traffic) would ballot
/// forever: the outcome is final in the replier's applied log, so it is
/// simply told. This is the per-decree analogue of Raft's leader
/// completing a lagging follower from its own log.
class DecreeOutcome final : public MessageBase<DecreeOutcome> {
 public:
  DecreeOutcome(std::uint64_t decree, Value winner)
      : decree_(decree), winner_(winner) {}

  std::uint64_t decree() const noexcept { return decree_; }
  Value winner() const noexcept { return winner_; }

  std::string describe() const override {
    return "DecreeOutcome{decree=" + std::to_string(decree_) +
           ", winner=" + std::to_string(winner_) + "}";
  }

 private:
  std::uint64_t decree_;
  Value winner_;
};

/// Request for a batch payload this node must apply but never received
/// (announce still in flight, or lost to a crash).
class BatchFetch final : public MessageBase<BatchFetch> {
 public:
  explicit BatchFetch(Value batchId) : batchId_(batchId) {}

  Value batchId() const noexcept { return batchId_; }

  std::string describe() const override {
    return "BatchFetch{batch=" + std::to_string(batchId_) + "}";
  }

 private:
  Value batchId_;
};

/// Restart catch-up: a recovered node asks the cluster for the committed
/// decrees from its recovered prefix on.
class CatchupRequest final : public MessageBase<CatchupRequest> {
 public:
  explicit CatchupRequest(std::uint64_t fromDecree)
      : fromDecree_(fromDecree) {}

  std::uint64_t fromDecree() const noexcept { return fromDecree_; }

  std::string describe() const override {
    return "CatchupRequest{from=" + std::to_string(fromDecree_) + "}";
  }

 private:
  std::uint64_t fromDecree_;
};

/// Catch-up reply: the responder's applied decrees from the requested
/// index (final — applied prefixes never change), with the non-noop batch
/// payloads the requester will need to execute them.
class CatchupReply final : public MessageBase<CatchupReply> {
 public:
  CatchupReply(std::uint64_t fromDecree, std::vector<Value> decrees,
               std::vector<std::pair<Value, std::vector<Value>>> batches)
      : fromDecree_(fromDecree),
        decrees_(std::move(decrees)),
        batches_(std::move(batches)) {}

  std::uint64_t fromDecree() const noexcept { return fromDecree_; }
  /// Batch id per decree, for decrees fromDecree, fromDecree+1, ...
  const std::vector<Value>& decrees() const noexcept { return decrees_; }
  const std::vector<std::pair<Value, std::vector<Value>>>& batches()
      const noexcept {
    return batches_;
  }

  std::string describe() const override {
    return "CatchupReply{from=" + std::to_string(fromDecree_) +
           ", decrees=" + std::to_string(decrees_.size()) + "}";
  }

 private:
  std::uint64_t fromDecree_;
  std::vector<Value> decrees_;
  std::vector<std::pair<Value, std::vector<Value>>> batches_;
};

}  // namespace ooc::svc

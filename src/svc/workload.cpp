#include "svc/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ooc::svc {

Workload::Workload(const WorkloadOptions& options, ProcessId node,
                   std::size_t n, std::uint64_t seed)
    : options_(options),
      rng_(Rng(seed).split(0x776Cull + node)) {
  if (n == 0) throw std::invalid_argument("workload: n must be positive");
  if (options_.keySpace == 0)
    throw std::invalid_argument("workload: keySpace must be positive");
  if (options_.thinkMax < options_.thinkMin)
    throw std::invalid_argument("workload: thinkMax < thinkMin");
  // Clients are partitioned by home node; remainders go to the low ids.
  population_ = options_.clients / n +
                (node < options_.clients % n ? 1 : 0);

  // Zipf CDF: cum[k] = sum_{i<=k} 1/(i+1)^theta, normalized. Built once;
  // draws binary-search it with a uniform double.
  zipfCdf_.resize(options_.keySpace);
  double sum = 0.0;
  for (std::uint32_t k = 0; k < options_.keySpace; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k) + 1.0, options_.zipfTheta);
    zipfCdf_[k] = sum;
  }
  for (double& c : zipfCdf_) c /= sum;

  const std::uint64_t cap = options_.commandsPerNode;
  if (options_.closedLoop) {
    // Initial wave: the population's first commands, spread evenly over
    // [1, startSpread] — truncated to the emission cap (with 10^6 clients
    // only the head of the wave fits, which is the point: the cap bounds
    // the schedule, the population sets the concurrency).
    const std::uint64_t wave = std::min<std::uint64_t>(population_, cap);
    const Tick spread = std::max<Tick>(1, options_.startSpread);
    for (std::uint64_t i = 0; i < wave; ++i) {
      const Tick at = 1 + (i * spread) / std::max<std::uint64_t>(wave, 1);
      ++calendar_[at];
    }
    planned_ = wave;
  } else {
    // Open loop: bucketed deterministic rate with optional bursts. The
    // whole calendar is laid out up front (bounded by the cap).
    double acc = 0.0;
    for (Tick t = 1; planned_ < cap && t < (1u << 20); ++t) {
      double rate = options_.arrivalsPerTick;
      if (options_.burstEvery > 0 &&
          t % options_.burstEvery < options_.burstLen) {
        rate *= options_.burstFactor;
      }
      acc += rate;
      while (acc >= 1.0 && planned_ < cap) {
        acc -= 1.0;
        ++calendar_[t];
        ++planned_;
      }
    }
  }
}

Tick Workload::nextArrivalTick(Tick now) const {
  const auto it = calendar_.upper_bound(now);
  return it == calendar_.end() ? 0 : it->first;
}

std::vector<Arrival> Workload::collect(Tick tick) {
  // Consume everything scheduled at or BEFORE `tick`: a crash purges the
  // node's armed arrival timer, so after a restart the next firing must
  // sweep up arrivals whose scheduled ticks passed during the downtime.
  std::vector<Arrival> arrivals;
  while (!calendar_.empty() && calendar_.begin()->first <= tick) {
    const auto it = calendar_.begin();
    for (std::uint32_t i = 0; i < it->second; ++i) {
      Arrival a;
      a.client = population_ == 0 ? 0 : rng_.below(population_);
      a.key = drawKey();
      ++keyCounts_[a.key];
      ++emitted_;
      arrivals.push_back(a);
    }
    calendar_.erase(it);
  }
  return arrivals;
}

void Workload::onCommit(Tick now) {
  if (!options_.closedLoop || planned_ >= cap()) return;
  const Tick think = static_cast<Tick>(
      rng_.between(static_cast<std::int64_t>(options_.thinkMin),
                   static_cast<std::int64_t>(options_.thinkMax)));
  ++calendar_[now + std::max<Tick>(1, think)];
  ++planned_;
}

std::uint32_t Workload::drawKey() {
  const double u = rng_.uniform01();
  const auto it = std::lower_bound(zipfCdf_.begin(), zipfCdf_.end(), u);
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(static_cast<std::size_t>(it - zipfCdf_.begin()),
                            zipfCdf_.size() - 1));
}

std::uint64_t Workload::hottestKeyHits() const {
  std::uint64_t best = 0;
  for (const auto& [key, count] : keyCounts_) best = std::max(best, count);
  return best;
}

}  // namespace ooc::svc

// The service runner: one harness that drives a replicated-log cluster —
// composed per-decree engines (registry pairings), per-decree Paxos, or
// native Raft — under the deterministic client workload, with crash /
// crash-restart faults, and audits the service-level safety properties:
//
//  * prefix agreement — any two nodes' applied logs agree on their common
//    prefix (the multi-decree generalization of per-instance agreement);
//  * exactly-once commit — no client command is applied twice and no
//    batch wins two decrees.
//
// The capability gate: a composed engine may power the log only if its
// detector is a crash-model, async-capable VAC detector and its driver is
// a MULTIVALUED reconciliator (DriverCapability::multivalued) that needs
// no oracle. A binary coin can never return a client command — a
// coin-driven log would decide values nobody proposed — so the registry
// descriptor, not a name list, decides admission.
//
// Deterministic in (config, seed): same config -> byte-identical applied
// logs, metrics and serialized form. Composed and Paxos runs end by
// QUIESCENCE — drained workload, decided decrees and retired engines leave
// the event queue empty. Raft never quiesces (heartbeats and the resubmit
// bridge re-arm forever), so those runs end by a stop predicate built from
// RaftLogNode::drained() plus applied-log-length agreement across the
// counted nodes; maxTicks is only the runaway guard in both cases.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "compose/hooks.hpp"
#include "core/scheduling.hpp"
#include "raft/types.hpp"
#include "svc/service.hpp"
#include "svc/workload.hpp"
#include "util/types.hpp"

namespace ooc::svc {

/// Crash-restart timeline entry (same wire form as the Raft family:
/// "pid@tick+downtime").
struct RestartEvent {
  ProcessId id = 0;
  Tick at = 0;
  Tick downtime = 50;
};

struct SvcConfig {
  /// Which consensus powers the decrees: "compose" (registry pairing,
  /// gated), "paxos" (one PaxosNode per decree), or "raft" (native
  /// multi-decree log; SvcNode is not used).
  std::string engine = "compose";

  /// Registry names for engine="compose".
  std::string detector = "benor-vac";
  std::string driver = "lottery";
  /// Round-scheduling policy for the composed per-decree engines
  /// (core/scheduling.hpp). Non-lockstep policies let a decree's rounds
  /// skew within the pipeline window; they are gated by the registry's
  /// validateScheduling() and rejected outright for the raft/paxos
  /// engines, which have no round scheduler to swap. Zero-cost on the
  /// wire: nothing is serialized when lockstep, so every pre-policy
  /// scenario file and run-id is unchanged.
  SchedulingPolicy scheduler = SchedulingPolicy::kLockstep;

  std::size_t n = 5;
  /// Protocol parameter t; defaults to the detector's tDivisor rule
  /// (composed engines) or the crash-quorum floor((n-1)/2).
  std::optional<std::size_t> t;
  std::uint64_t seed = 1;
  double bias = 0.5;

  SvcNodeOptions service;
  WorkloadOptions workload;

  Tick minDelay = 1;
  Tick maxDelay = 10;
  compose::AdversaryOptions adversary;
  /// Permanent crashes (pid@tick) and crash-restarts (pid@tick+downtime).
  std::vector<std::pair<ProcessId, Tick>> crashes;
  std::vector<RestartEvent> restarts;

  /// Per-decree engine round cap (composed engines).
  Round maxRoundsPerDecree = 2000;
  Tick maxTicks = 2'000'000;

  /// Paxos engine: proposer retry bounds. Must be small — a decree's
  /// first ballot fires from this timer. Reactive (no-op) joiners use 8x
  /// these bounds as the failover rescue when the run has faults.
  Tick paxosRetryMin = 4;
  Tick paxosRetryMax = 12;

  /// Raft engine knobs (durability comes from `service`).
  Tick raftElectionMin = 150;
  Tick raftElectionMax = 300;
  Tick raftHeartbeat = 40;
  Tick resubmitEvery = 80;
};

struct SvcResult {
  // --- safety audits ---
  bool prefixOk = true;      ///< applied logs prefix-agree across nodes
  bool exactlyOnce = true;   ///< no duplicate applies, no batch wins twice
  /// Fault-free completeness: every emitted command applied at every node.
  /// Meaningless (and usually false) when the run has crashes/restarts.
  bool allApplied = false;

  // --- throughput / latency ---
  std::uint64_t decreesCommitted = 0;  ///< longest applied log
  std::uint64_t commandsCommitted = 0;
  std::uint64_t commandsEmitted = 0;
  std::uint64_t noopDecrees = 0;
  Tick lastCommitTick = 0;
  /// Largest gap between consecutive applies at the reference (first
  /// never-faulted) node — the leader-failover blackout window for Raft,
  /// the decree-stall window for the others.
  Tick maxCommitGap = 0;
  double commandsPerKtick = 0.0;
  /// Pooled across nodes, unsorted.
  std::vector<Tick> latencies;
  std::vector<std::uint32_t> batchSizes;

  // --- run accounting ---
  std::uint64_t messagesByCorrect = 0;
  std::uint64_t eventsProcessed = 0;
  bool hitCap = false;
  std::uint64_t duplicatesSuppressed = 0;  ///< summed over nodes
  /// (tick, node) of every election win, Raft engine only.
  std::vector<std::pair<Tick, ProcessId>> leaderEvents;
};

/// Capability gate for the configured engine; nullopt when admissible,
/// otherwise the human-readable diagnostic. Unknown registry names throw
/// (listing the known names), mirroring the composition resolver.
std::optional<std::string> validateEngine(const SvcConfig& config);

/// Runs one service configuration to quiescence. Deterministic in
/// (config, seed); throws std::invalid_argument on an inadmissible engine
/// or bad parameters.
SvcResult runSvc(const SvcConfig& config,
                 const compose::RunHooks& hooks = {});

/// key=value wire format (family=svc checker payloads), stamped with the
/// deterministic `# run-id=` line. parseSvcConfig re-validates the engine
/// gate, so a rejected pairing loaded from a file throws the same
/// diagnostic the CLI prints.
std::string serializeSvcConfig(const SvcConfig& config);
SvcConfig parseSvcConfig(const std::string& text);

}  // namespace ooc::svc

#include "sweep/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/json.hpp"

namespace ooc::sweep {
namespace {

/// Set while the current thread is a pool worker executing a sweep body;
/// a nested parallelFor must not block on the (busy) pool, so it degrades
/// to inline execution instead.
thread_local bool insidePoolWorker = false;

struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// One worker's share of the index space, as [begin, end) chunks. The
/// owner pops from the front; thieves steal from the back, so an owner
/// and a thief only contend when one chunk is left.
struct WorkerQueue {
  std::mutex mutex;
  std::deque<Chunk> chunks;
};

/// Everything one parallelFor call shares with the pool workers. Lives on
/// the calling thread's stack for the duration of the (blocking) call.
struct Job {
  std::size_t total = 0;
  const Body* body = nullptr;
  Control* control = nullptr;
  std::size_t workers = 0;

  std::size_t progressEvery = 0;
  const std::function<void(std::size_t, std::size_t)>* onProgress = nullptr;

  std::vector<WorkerQueue> queues;
  std::vector<WorkerStats> stats;
  /// Per-slot claim flags (set under the pool mutex) so a worker runs each
  /// job exactly once even though the job outlives its wakeup.
  std::vector<char> claimed;

  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> nextEmit{0};
  std::atomic<bool> emitting{false};

  std::mutex errorMutex;
  std::exception_ptr firstError;

  std::optional<Chunk> take(std::size_t self);
  void runWorker(std::size_t self);
  void progressTick();
};

std::optional<Chunk> Job::take(std::size_t self) {
  {
    std::lock_guard<std::mutex> lock(queues[self].mutex);
    auto& own = queues[self].chunks;
    if (!own.empty()) {
      Chunk chunk = own.front();
      own.pop_front();
      ++stats[self].chunksOwned;
      return chunk;
    }
  }
  for (std::size_t offset = 1; offset < workers; ++offset) {
    WorkerQueue& victim = queues[(self + offset) % workers];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.chunks.empty()) {
      Chunk chunk = victim.chunks.back();
      victim.chunks.pop_back();
      ++stats[self].chunksStolen;
      return chunk;
    }
  }
  return std::nullopt;
}

// Contention-free progress: completion is one relaxed atomic increment;
// emission is gated by an atomic threshold plus a single-emitter flag. A
// worker that loses the flag race simply skips the tick — no worker ever
// blocks on another for the sake of a heartbeat line.
void Job::progressTick() {
  const std::size_t count = done.fetch_add(1, std::memory_order_relaxed) + 1;
  if (progressEvery == 0 || onProgress == nullptr) return;
  if (count < nextEmit.load(std::memory_order_relaxed)) return;
  if (emitting.exchange(true, std::memory_order_acquire)) return;
  if (count >= nextEmit.load(std::memory_order_relaxed)) {
    nextEmit.store(count - count % progressEvery + progressEvery,
                   std::memory_order_relaxed);
    (*onProgress)(count, total);
  }
  emitting.store(false, std::memory_order_release);
}

void Job::runWorker(std::size_t self) {
  const bool wasInside = insidePoolWorker;
  insidePoolWorker = true;
  const auto begin = std::chrono::steady_clock::now();
  WorkerStats& mine = stats[self];
  while (!control->stopRequested()) {
    const auto chunk = take(self);
    if (!chunk) break;
    for (std::size_t index = chunk->begin; index < chunk->end; ++index) {
      if (control->stopRequested()) break;
      try {
        (*body)(index, *control);
        ++mine.configs;
        progressTick();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(errorMutex);
          if (!firstError) firstError = std::current_exception();
        }
        control->requestStop();
        break;
      }
    }
  }
  const std::chrono::duration<double> spent =
      std::chrono::steady_clock::now() - begin;
  mine.seconds = spent.count();
  if (mine.seconds > 0.0)
    mine.configsPerSec = static_cast<double>(mine.configs) / mine.seconds;
  insidePoolWorker = wasInside;
}

/// The persistent pool: process-lifetime threads grown lazily to the
/// largest worker count any sweep has requested. Keeping the threads (and
/// therefore their thread-local simulation arenas) alive across sweeps is
/// the point — short runs stop paying per-run setup. One job runs at a
/// time; concurrent parallelFor calls serialize on jobMutex_.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(Job& job) {
    std::lock_guard<std::mutex> serial(jobMutex_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (threads_.size() < job.workers)
        threads_.emplace_back(&Pool::workerMain, this, threads_.size());
      active_ = job.workers;
      job_ = &job;
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& thread : threads_) thread.join();
  }

  void workerMain(std::size_t slot) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && slot < job_->workers &&
                             !job_->claimed[slot]);
      });
      if (shutdown_) return;
      Job* job = job_;
      job->claimed[slot] = 1;
      lock.unlock();
      job->runWorker(slot);
      lock.lock();
      if (--active_ == 0) doneCv_.notify_all();
    }
  }

  std::mutex jobMutex_;  ///< serializes whole jobs
  std::mutex mutex_;     ///< guards everything below
  std::condition_variable cv_;
  std::condition_variable doneCv_;
  std::vector<std::thread> threads_;
  Job* job_ = nullptr;
  std::size_t active_ = 0;
  bool shutdown_ = false;
};

void writeWorkerRows(obs::JsonWriter& w,
                     const std::vector<WorkerStats>& perWorker) {
  w.key("per_worker").beginArray();
  for (const WorkerStats& worker : perWorker) {
    w.beginObject();
    w.key("configs").value(worker.configs);
    w.key("chunks_dealt").value(worker.chunksDealt);
    w.key("chunks_owned").value(worker.chunksOwned);
    w.key("chunks_stolen").value(worker.chunksStolen);
    w.key("seconds").value(worker.seconds);
    w.key("configs_per_sec").value(worker.configsPerSec);
    w.endObject();
  }
  w.endArray();
}

}  // namespace

std::size_t hardwareThreads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

SweepStats parallelFor(std::size_t total, const Body& body,
                       const Options& options) {
  std::size_t threadCount =
      options.threads == 0 ? hardwareThreads() : options.threads;
  threadCount = std::max<std::size_t>(1, std::min(threadCount, total));
  if (insidePoolWorker) threadCount = 1;  // nested sweeps run inline

  SweepStats result;
  result.workers = threadCount;
  if (total == 0) return result;

  const std::size_t chunkSize =
      options.chunkSize != 0
          ? options.chunkSize
          : std::clamp<std::size_t>(total / (threadCount * 16),
                                    std::size_t{1}, std::size_t{1024});
  result.chunkSize = chunkSize;

  Control control;
  Job job;
  job.total = total;
  job.body = &body;
  job.control = &control;
  job.workers = threadCount;
  job.progressEvery = options.progressEvery;
  job.onProgress = options.onProgress ? &options.onProgress : nullptr;
  job.nextEmit.store(options.progressEvery, std::memory_order_relaxed);
  job.queues = std::vector<WorkerQueue>(threadCount);
  job.stats.resize(threadCount);
  job.claimed.assign(threadCount, 0);
  // Chunks are dealt round-robin so every worker starts on a contiguous,
  // roughly equal share; stealing rebalances skewed per-index runtimes.
  for (std::size_t begin = 0, dealt = 0; begin < total;
       begin += chunkSize, ++dealt) {
    job.queues[dealt % threadCount].chunks.push_back(
        Chunk{begin, std::min(begin + chunkSize, total)});
    ++job.stats[dealt % threadCount].chunksDealt;
  }

  const auto sweepBegin = std::chrono::steady_clock::now();
  if (threadCount <= 1) {
    job.claimed[0] = 1;
    job.runWorker(0);
  } else {
    Pool::instance().run(job);
  }
  const std::chrono::duration<double> sweepElapsed =
      std::chrono::steady_clock::now() - sweepBegin;
  if (job.firstError) std::rethrow_exception(job.firstError);

  result.elapsedSeconds = sweepElapsed.count();
  result.perWorker = std::move(job.stats);
  for (const WorkerStats& stats : result.perWorker) {
    result.configs += stats.configs;
    result.chunksDealt += stats.chunksDealt;
    result.steals += stats.chunksStolen;
  }
  if (result.elapsedSeconds > 0.0)
    result.configsPerSec =
        static_cast<double>(result.configs) / result.elapsedSeconds;
  return result;
}

std::string toJson(const SweepStats& stats) {
  obs::JsonWriter w;
  w.beginObject();
  w.key("workers").value(static_cast<std::uint64_t>(stats.workers));
  w.key("chunk_size").value(static_cast<std::uint64_t>(stats.chunkSize));
  w.key("configs").value(stats.configs);
  w.key("chunks").value(stats.chunksDealt);
  w.key("steals").value(stats.steals);
  w.key("elapsed_seconds").value(stats.elapsedSeconds);
  w.key("configs_per_sec").value(stats.configsPerSec);
  writeWorkerRows(w, stats.perWorker);
  w.endObject();
  return w.str();
}

void SweepAccumulator::add(const SweepStats& stats) {
  ++sweeps;
  workers = std::max(workers, stats.workers);
  configs += stats.configs;
  chunksDealt += stats.chunksDealt;
  steals += stats.steals;
  elapsedSeconds += stats.elapsedSeconds;
  if (perWorker.size() < stats.perWorker.size())
    perWorker.resize(stats.perWorker.size());
  for (std::size_t i = 0; i < stats.perWorker.size(); ++i) {
    const WorkerStats& from = stats.perWorker[i];
    WorkerStats& into = perWorker[i];
    into.configs += from.configs;
    into.chunksDealt += from.chunksDealt;
    into.chunksOwned += from.chunksOwned;
    into.chunksStolen += from.chunksStolen;
    into.seconds += from.seconds;
    if (into.seconds > 0.0)
      into.configsPerSec = static_cast<double>(into.configs) / into.seconds;
  }
}

std::string toJson(const SweepAccumulator& acc) {
  obs::JsonWriter w;
  w.beginObject();
  w.key("sweeps").value(acc.sweeps);
  w.key("workers").value(static_cast<std::uint64_t>(acc.workers));
  w.key("configs").value(acc.configs);
  w.key("chunks").value(acc.chunksDealt);
  w.key("steals").value(acc.steals);
  w.key("elapsed_seconds").value(acc.elapsedSeconds);
  w.key("configs_per_sec")
      .value(acc.elapsedSeconds > 0.0
                 ? static_cast<double>(acc.configs) / acc.elapsedSeconds
                 : 0.0);
  writeWorkerRows(w, acc.perWorker);
  w.endObject();
  return w.str();
}

}  // namespace ooc::sweep

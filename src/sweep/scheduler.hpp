// The parallel experiment scheduler: a persistent worker pool that shards
// an index space [0, total) over work-stealing per-worker deques and runs
// any `(index) -> void` experiment functor on every index exactly once.
//
// Extracted from the one-off driver in src/check/checker.cpp (PR 4/7) so
// every embarrassingly parallel sweep in the repo — checker exploration,
// the E20/E22 composition matrices, bench trial loops, the family=svc
// grids — rides one scheduler with one telemetry schema.
//
// Determinism contract (the reason this is safe to use everywhere):
//   * The scheduler decides only WHICH THREAD runs an index and WHEN —
//     never what the index computes. Bodies must be pure functions of
//     their index (each body invocation owns its simulation; shared state
//     is limited to writing results[index] into a pre-sized slot plus
//     commutative telemetry-registry updates).
//   * Callers reduce results in index order after parallelFor returns, so
//     floating-point folds see one canonical order. Under that discipline
//     every aggregate (ooc.check.v1, ooc.matrix.v1, ooc.fd-matrix.v1,
//     bench JSON) is byte-identical at threads=1 and threads=N.
//   * The only non-deterministic outputs are the wall-clock fields of
//     SweepStats, which stay quarantined in the documented `sweep`
//     telemetry block of each artifact and never feed byte-diffed data.
//
// Worker threads are persistent (lazily grown, process-lifetime), so the
// thread-local simulation arenas — EventQueue bucket rings, timer tables,
// trace buffers (src/sim/run_arena.hpp) — stay warm across sweeps: a
// 2ms simulation stops paying per-run setup on the 10'000th run just as
// on the 2nd.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ooc::sweep {

/// One worker's share of a sweep. Timing fields are wall-clock and thus
/// NOT deterministic — they feed the `sweep` telemetry block of the JSON
/// artifacts (documented as the one non-reproducible section), never the
/// byte-diffed parts.
struct WorkerStats {
  std::uint64_t configs = 0;       ///< indices this worker ran
  std::uint64_t chunksDealt = 0;   ///< initial depth of its chunk deque
  std::uint64_t chunksOwned = 0;   ///< chunks popped from its own front
  std::uint64_t chunksStolen = 0;  ///< chunks it stole from victims' backs
  double seconds = 0.0;            ///< wall-clock time inside the worker
  double configsPerSec = 0.0;
};

/// Sweep-level telemetry of one parallelFor() call.
struct SweepStats {
  std::size_t workers = 0;
  std::size_t chunkSize = 0;
  std::uint64_t configs = 0;  ///< indices actually run (== total unless stopped)
  std::uint64_t chunksDealt = 0;
  std::uint64_t steals = 0;  ///< total cross-worker chunk migrations
  double elapsedSeconds = 0.0;
  double configsPerSec = 0.0;
  std::vector<WorkerStats> perWorker;
};

/// Cooperative early exit: a body may request the sweep stop (e.g. the
/// checker hit maxFindings). Workers observe the flag between indices, so
/// in-flight bodies finish; indices not yet started may be skipped.
class Control {
 public:
  void requestStop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  bool stopRequested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
};

struct Options {
  /// Worker threads; 0 means hardwareThreads(). Clamped to [1, total].
  /// threads == 1 runs inline on the calling thread (no pool involved).
  std::size_t threads = 0;
  /// Indices per chunk; 0 means clamp(total / (threads * 16), 1, 1024) —
  /// big enough to keep a worker on consecutive configurations (warm
  /// thread-local arenas), small enough that stealing balances skewed
  /// per-index runtimes.
  std::size_t chunkSize = 0;
  /// Invoke `onProgress` roughly every `progressEvery` completed indices
  /// (0 = never). Contention-free: completion is an atomic counter and a
  /// single throttled emitter publishes it — a worker that loses the
  /// emitter race skips the tick instead of blocking, so progress
  /// reporting never serializes workers. Consequently the callback runs on
  /// whichever worker crossed the threshold, one invocation at a time.
  std::size_t progressEvery = 0;
  std::function<void(std::size_t done, std::size_t total)> onProgress;
};

/// The experiment functor: run index `index`. Must be safe to call
/// concurrently for distinct indices from distinct threads.
using Body = std::function<void(std::size_t index, Control& control)>;

/// Runs `body` on every index of [0, total), sharded over the persistent
/// worker pool. Blocks until the sweep completes (or stops early). The
/// first exception a body throws stops the sweep and is rethrown here.
/// Nested calls from inside a body run inline at threads=1 (the pool
/// executes one sweep at a time; concurrent calls from unrelated threads
/// serialize on it).
SweepStats parallelFor(std::size_t total, const Body& body,
                       const Options& options = {});

/// std::thread::hardware_concurrency(), floored at 1.
std::size_t hardwareThreads() noexcept;

/// Renders `stats` as the canonical `sweep` JSON telemetry block shared by
/// ooc.check.v1 and the bench writers:
///   {"workers":W,"chunk_size":C,"configs":N,"chunks":K,"steals":S,
///    "elapsed_seconds":E,"configs_per_sec":R,"per_worker":[...]}
/// Wall-clock fields make this the one non-reproducible block of any
/// artifact that embeds it — byte-diff consumers strip it first.
std::string toJson(const SweepStats& stats);

/// Accumulates the sweeps of one process (a bench makes one parallelFor
/// call per experiment cell) into a single telemetry block: counts are
/// summed, per-worker rows merged by slot, and `sweeps` counts the calls.
struct SweepAccumulator {
  std::uint64_t sweeps = 0;
  std::size_t workers = 0;  ///< max over sweeps
  std::uint64_t configs = 0;
  std::uint64_t chunksDealt = 0;
  std::uint64_t steals = 0;
  double elapsedSeconds = 0.0;
  std::vector<WorkerStats> perWorker;  ///< merged by worker slot

  void add(const SweepStats& stats);
  bool empty() const noexcept { return sweeps == 0; }
};

/// Renders the accumulator with the same field names as toJson(SweepStats)
/// plus a `sweeps` count (and no chunk_size — it varies per sweep).
std::string toJson(const SweepAccumulator& acc);

}  // namespace ooc::sweep

#include "benor/async_byzantine.hpp"

#include <memory>

#include "benor/messages.hpp"
#include "core/tagged_message.hpp"

namespace ooc::benor {

const char* toString(AsyncByzantineStrategy strategy) noexcept {
  switch (strategy) {
    case AsyncByzantineStrategy::kSilent: return "silent";
    case AsyncByzantineStrategy::kEquivocate: return "equivocate";
    case AsyncByzantineStrategy::kRandom: return "random";
    case AsyncByzantineStrategy::kContrarian: return "contrarian";
  }
  return "?";
}

void AsyncByzantine::onMessage(ProcessId, const Message& message) {
  if (strategy_ == AsyncByzantineStrategy::kSilent) return;
  const auto* tagged = message.as<TaggedMessage>();
  if (tagged == nullptr || tagged->stage() != Stage::kDetect) return;
  if (!attacked_.insert(tagged->round()).second) return;
  attackRound(tagged->round());
}

void AsyncByzantine::attackRound(Round round) {
  const std::size_t n = ctx().processCount();
  auto send = [&](ProcessId dest, std::unique_ptr<Message> inner) {
    ctx().send(dest, std::make_unique<TaggedMessage>(round, Stage::kDetect,
                                                     std::move(inner)));
  };

  for (ProcessId dest = 0; dest < n; ++dest) {
    switch (strategy_) {
      case AsyncByzantineStrategy::kSilent:
        return;
      case AsyncByzantineStrategy::kEquivocate: {
        const Value v = dest < n / 2 ? 0 : 1;
        send(dest, std::make_unique<ProposalMessage>(v));
        send(dest, std::make_unique<ReportMessage>(true, v));
        break;
      }
      case AsyncByzantineStrategy::kRandom: {
        // Garbage values included: receivers must discard them.
        const Value proposal = static_cast<Value>(ctx().rng().below(4));
        const Value ratified = static_cast<Value>(ctx().rng().below(4));
        send(dest, std::make_unique<ProposalMessage>(proposal));
        send(dest, std::make_unique<ReportMessage>(ctx().rng().coin() == 1,
                                                   ratified));
        break;
      }
      case AsyncByzantineStrategy::kContrarian: {
        // Push the bit opposite to the round parity (a cheap proxy for
        // "whatever the majority currently is not").
        const Value v = static_cast<Value>(round % 2);
        send(dest, std::make_unique<ProposalMessage>(v));
        send(dest, std::make_unique<ReportMessage>(true, v));
        break;
      }
    }
  }
}

}  // namespace ooc::benor

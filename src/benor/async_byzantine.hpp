// Asynchronous Byzantine adversary for Ben-Or-family runs.
//
// Unlike the lockstep Phase-King attackers, an async adversary has no tick
// calendar; it is *reactive*: whenever it first observes template traffic
// for a round, it injects hostile phase-1 and phase-2 messages for that
// round — equivocating per destination, forging ratifies, or staying
// silent. Correct processes only ever count distinct senders and validate
// value domains, so the strategies probe exactly the surface the
// ByzantineBenOrVac thresholds are built for.
#pragma once

#include <unordered_set>

#include "sim/process.hpp"
#include "util/types.hpp"

namespace ooc::benor {

enum class AsyncByzantineStrategy {
  /// Sends nothing (crash-equivalent).
  kSilent,
  /// Proposal 0 to the lower half of ids, 1 to the upper half; forged
  /// ratify(0)/ratify(1) split the same way.
  kEquivocate,
  /// Independently random proposals and (possibly forged) ratifies per
  /// destination, including out-of-domain garbage values.
  kRandom,
  /// Always ratifies the minority bit to everyone — the strongest simple
  /// push against convergence.
  kContrarian,
};

const char* toString(AsyncByzantineStrategy strategy) noexcept;

class AsyncByzantine final : public Process {
 public:
  explicit AsyncByzantine(AsyncByzantineStrategy strategy)
      : strategy_(strategy) {}

  void onStart() override {}
  void onMessage(ProcessId from, const Message& message) override;

 private:
  void attackRound(Round round);

  AsyncByzantineStrategy strategy_;
  std::unordered_set<Round> attacked_;
};

}  // namespace ooc::benor

#include "benor/byzantine_vac.hpp"

#include <stdexcept>

#include "benor/messages.hpp"

namespace ooc::benor {
namespace {

bool binary(Value v) noexcept { return v == 0 || v == 1; }

}  // namespace

ByzantineBenOrVac::ByzantineBenOrVac(std::size_t faultTolerance)
    : t_(faultTolerance) {}

void ByzantineBenOrVac::invoke(ObjectContext& ctx, Value v) {
  if (5 * t_ >= ctx.processCount())
    throw std::invalid_argument("Byzantine Ben-Or requires n > 5t");
  if (!binary(v))
    throw std::invalid_argument("Byzantine Ben-Or is a binary object");
  input_ = v;
  proposalSeen_.assign(ctx.processCount(), false);
  reportSeen_.assign(ctx.processCount(), false);
  ctx.fanout(makeMessage<ProposalMessage>(v));
}

void ByzantineBenOrVac::onMessage(ObjectContext& ctx, ProcessId from,
                                  const Message& inner) {
  if (outcome_ || proposalSeen_.empty()) return;

  if (const auto* proposal = inner.as<ProposalMessage>()) {
    if (from >= proposalSeen_.size() || proposalSeen_[from]) return;
    proposalSeen_[from] = true;
    ++proposalCount_;  // the wait counts every sender, junk ballots or not
    if (binary(proposal->value))
      ++proposalTally_[static_cast<std::size_t>(proposal->value)];
    maybeFinishPhaseOne(ctx);
    return;
  }

  if (const auto* report = inner.as<ReportMessage>()) {
    if (from >= reportSeen_.size() || reportSeen_[from]) return;
    reportSeen_[from] = true;
    ++reportCount_;
    if (report->ratify && binary(report->value))
      ++ratifyTally_[static_cast<std::size_t>(report->value)];
    maybeFinish();
  }
}

void ByzantineBenOrVac::maybeFinishPhaseOne(ObjectContext& ctx) {
  const std::size_t n = ctx.processCount();
  if (reportSent_ || proposalCount_ < n - t_) return;
  reportSent_ = true;

  std::optional<Value> super;
  for (Value k = 0; k <= 1; ++k) {
    // strictly more than (n+t)/2, robust to odd n+t: 2*count > n+t
    if (2 * proposalTally_[static_cast<std::size_t>(k)] > n + t_) super = k;
  }
  ctx.fanout(super ? makeMessage<ReportMessage>(true, *super)
                   : makeMessage<ReportMessage>(false, kNoValue));
  maybeFinish();
}

void ByzantineBenOrVac::maybeFinish() {
  if (outcome_ || !reportSent_ || reportCount_ < proposalSeen_.size() - t_)
    return;

  for (Value k = 0; k <= 1; ++k) {
    if (ratifyTally_[static_cast<std::size_t>(k)] > 3 * t_) {
      outcome_ = Outcome{Confidence::kCommit, k};
      return;
    }
  }
  for (Value k = 0; k <= 1; ++k) {
    if (ratifyTally_[static_cast<std::size_t>(k)] > t_) {
      outcome_ = Outcome{Confidence::kAdopt, k};
      return;
    }
  }
  outcome_ = Outcome{Confidence::kVacillate, input_};
}

DetectorFactory ByzantineBenOrVac::factory(std::size_t faultTolerance) {
  return [faultTolerance](Round) {
    return std::make_unique<ByzantineBenOrVac>(faultTolerance);
  };
}

}  // namespace ooc::benor

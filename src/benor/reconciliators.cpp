#include "benor/reconciliators.hpp"

#include "benor/messages.hpp"
#include "util/rng.hpp"

namespace ooc::benor {

DriverFactory CoinReconciliator::factory() {
  return [](Round) { return std::make_unique<CoinReconciliator>(); };
}

DriverFactory BiasedCoinReconciliator::factory(double bias) {
  return [bias](Round) {
    return std::make_unique<BiasedCoinReconciliator>(bias);
  };
}

CommonCoinReconciliator::CommonCoinReconciliator(std::uint64_t sharedSeed,
                                                 Round round)
    : sharedSeed_(sharedSeed), round_(round) {}

void CommonCoinReconciliator::invoke(ObjectContext&, const Outcome&) {
  // Every process computes the same bit for the same (seed, round): the
  // shared coin is a deterministic function, modelling an idealized common
  // coin primitive.
  Rng coin = Rng(sharedSeed_).split(round_);
  value_ = coin.coin();
}

DriverFactory CommonCoinReconciliator::factory(std::uint64_t sharedSeed) {
  return [sharedSeed](Round m) {
    return std::make_unique<CommonCoinReconciliator>(sharedSeed, m);
  };
}

DriverFactory KeepValueReconciliator::factory() {
  return [](Round) { return std::make_unique<KeepValueReconciliator>(); };
}

LotteryReconciliator::LotteryReconciliator(std::size_t faultTolerance,
                                           std::uint64_t sharedSeed,
                                           Round round)
    : t_(faultTolerance), sharedSeed_(sharedSeed), round_(round) {}

std::uint64_t LotteryReconciliator::ticketOf(ProcessId who) const noexcept {
  // A shared pseudo-random permutation of the processes per round: every
  // process computes the same ticket for the same (seed, round, id).
  return Rng(sharedSeed_ ^ (static_cast<std::uint64_t>(round_) << 32))
      .split(who)
      .next();
}

void LotteryReconciliator::invoke(ObjectContext& ctx,
                                  const Outcome& detected) {
  seen_.assign(ctx.processCount(), false);
  ctx.fanout(makeMessage<LotteryTicketMessage>(detected.value));
}

void LotteryReconciliator::onMessage(ObjectContext& ctx, ProcessId from,
                                     const Message& inner) {
  const auto* ticket = inner.as<LotteryTicketMessage>();
  if (ticket == nullptr || value_ || seen_.empty()) return;
  if (from >= seen_.size() || seen_[from]) return;
  seen_[from] = true;
  ++count_;
  const std::uint64_t draw = ticketOf(from);
  if (draw < bestTicket_) {
    bestTicket_ = draw;
    bestValue_ = ticket->value;
  }
  if (count_ >= ctx.processCount() - t_) value_ = bestValue_;
}

DriverFactory LotteryReconciliator::factory(std::size_t faultTolerance,
                                            std::uint64_t sharedSeed) {
  return [faultTolerance, sharedSeed](Round m) {
    return std::make_unique<LotteryReconciliator>(faultTolerance, sharedSeed,
                                                  m);
  };
}

}  // namespace ooc::benor

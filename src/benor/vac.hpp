// Ben-Or's vacillate-adopt-commit object (paper §4.2, Algorithm 5).
//
// Asynchronous message-passing, t crash failures with t < n/2:
//
//   VAC(v, m):
//     send <1, v> to all; wait for n-t <1, *> messages
//     if more than n/2 of them carry the same value w: send <2, w, ratify>
//     else: send <2, ?>
//     wait for n-t <2, *> messages
//     if more than t <2, w, ratify>:      return (commit, w)
//     else if received any <2, w, ratify>: return (adopt, w)
//     else:                                return (vacillate, v)
//
// Counting is per distinct sender (a duplicated delivery must not inflate a
// tally). Reports that arrive before this process finished phase one are
// tallied immediately — the evaluation simply waits until our own report is
// sent and n-t reports are in; evaluating on more than n-t reports keeps
// every guarantee (the t+1-senders intersection argument only needs "at
// least n-t received").
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/objects.hpp"

namespace ooc::benor {

class BenOrVac final : public AgreementDetector {
 public:
  /// `faultTolerance` is t, the number of tolerated crash failures; the
  /// object waits for quorums of (n - t). Requires 2t < n.
  explicit BenOrVac(std::size_t faultTolerance);

  void invoke(ObjectContext& ctx, Value v) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  std::optional<Outcome> result() const override { return outcome_; }

  /// Factory for the consensus template.
  static DetectorFactory factory(std::size_t faultTolerance);

 private:
  void maybeFinishPhaseOne(ObjectContext& ctx);
  void maybeFinish();

  std::size_t t_;
  Value input_ = kNoValue;
  bool invoked_ = false;
  bool reportSent_ = false;
  std::optional<Outcome> outcome_;

  std::vector<bool> proposalSeen_;  // sender dedup, phase 1
  std::vector<bool> reportSeen_;    // sender dedup, phase 2
  std::size_t proposalCount_ = 0;
  std::size_t reportCount_ = 0;
  std::unordered_map<Value, std::size_t> proposalTally_;
  std::unordered_map<Value, std::size_t> ratifyTally_;
  std::optional<Value> anyRatified_;
};

}  // namespace ooc::benor

// Reconciliators for the Ben-Or family (paper §4.2 Algorithm 6, plus the
// extensions the framework invites: because the reconciliator is its own
// object, alternatives slot into the same template — experiment E10).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/objects.hpp"

namespace ooc::benor {

/// Algorithm 6: `return CoinFlip()` — an independent fair local coin.
/// Weak agreement holds because every round has probability >= 2^-n of all
/// coins matching the adopt value (or each other), so with probability 1
/// some round produces a deciding set of preferences.
class CoinReconciliator final : public Driver {
 public:
  void invoke(ObjectContext& ctx, const Outcome&) override {
    value_ = ctx.rng().coin();
  }
  void onMessage(ObjectContext&, ProcessId, const Message&) override {}
  std::optional<Value> result() const override { return value_; }

  static DriverFactory factory();

 private:
  std::optional<Value> value_;
};

/// Biased local coin: returns 1 with probability `bias`. Degenerates to
/// Algorithm 6 at bias = 0.5; the sweep shows how skew towards the eventual
/// majority shortens runs.
class BiasedCoinReconciliator final : public Driver {
 public:
  explicit BiasedCoinReconciliator(double bias) : bias_(bias) {}

  void invoke(ObjectContext& ctx, const Outcome&) override {
    value_ = ctx.rng().chance(bias_) ? 1 : 0;
  }
  void onMessage(ObjectContext&, ProcessId, const Message&) override {}
  std::optional<Value> result() const override { return value_; }

  static DriverFactory factory(double bias);

 private:
  double bias_;
  std::optional<Value> value_;
};

/// Common (shared) coin: all processes of round m obtain the same
/// pseudo-random bit, derived from (sharedSeed, m). This is the classic
/// Rabin-style speedup — expected O(1) rounds instead of expected
/// exponential — and exercises the paper's point that the reconciliator is
/// a swappable building block. For binary consensus with both values
/// present, validity is preserved (if inputs were unanimous the template
/// commits in round 1 and no reconciliator runs).
class CommonCoinReconciliator final : public Driver {
 public:
  CommonCoinReconciliator(std::uint64_t sharedSeed, Round round);

  void invoke(ObjectContext& ctx, const Outcome& detected) override;
  void onMessage(ObjectContext&, ProcessId, const Message&) override {}
  std::optional<Value> result() const override { return value_; }

  static DriverFactory factory(std::uint64_t sharedSeed);

 private:
  std::uint64_t sharedSeed_;
  Round round_;
  std::optional<Value> value_;
};

/// Lottery reconciliator — a *multivalued* driver (coins are binary-only).
/// Every invoker broadcasts its value; after n-t distinct tickets the
/// winner is the sender minimizing a per-round pseudo-random draw shared
/// by all processes, and the winner's value is returned. Validity holds
/// (the value is an invoker's input); weak agreement holds with
/// probability 1 because whenever the globally minimal ticket lands in
/// everyone's first n-t receipts — which has constant probability per
/// round — all invokers return the same value.
///
/// REQUIRES ConsensusProcess::Options::alwaysRunDriver = true: this driver
/// waits for a quorum of tickets, so every process must pass through the
/// drive stage every round (adopters/committers included — their returned
/// value is simply unused). Without it, a round where fewer than n-t
/// processes vacillate deadlocks the vacillators.
class LotteryReconciliator final : public Driver {
 public:
  LotteryReconciliator(std::size_t faultTolerance, std::uint64_t sharedSeed,
                       Round round);

  void invoke(ObjectContext& ctx, const Outcome& detected) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  std::optional<Value> result() const override { return value_; }

  static DriverFactory factory(std::size_t faultTolerance,
                               std::uint64_t sharedSeed);

 private:
  std::uint64_t ticketOf(ProcessId who) const noexcept;

  std::size_t t_;
  std::uint64_t sharedSeed_;
  Round round_;
  std::vector<bool> seen_;
  std::size_t count_ = 0;
  std::uint64_t bestTicket_ = ~0ull;
  Value bestValue_ = kNoValue;
  std::optional<Value> value_;
};

/// "Stubborn" driver: keeps the detector's value — i.e. no reconciliation.
/// A negative control for E10: with a balanced start, the template can spin
/// forever; used by tests to show that the reconciliator is what provides
/// termination (paper §3: "how [can] termination ... be guaranteed if the
/// collection of preferences is balanced").
class KeepValueReconciliator final : public Driver {
 public:
  void invoke(ObjectContext&, const Outcome& detected) override {
    value_ = detected.value;
  }
  void onMessage(ObjectContext&, ProcessId, const Message&) override {}
  std::optional<Value> result() const override { return value_; }

  static DriverFactory factory();

 private:
  std::optional<Value> value_;
};

}  // namespace ooc::benor

#include "benor/monolithic.hpp"

#include <stdexcept>

namespace ooc::benor {

MonolithicBenOr::MonolithicBenOr(Value input, std::size_t faultTolerance,
                                 Round maxRounds)
    : preference_(input), t_(faultTolerance), maxRounds_(maxRounds) {}

MonolithicBenOr::RoundTally& MonolithicBenOr::tally(Round r) {
  RoundTally& entry = tallies_[r];
  if (entry.proposalSeen.empty()) {
    entry.proposalSeen.assign(ctx().processCount(), false);
    entry.reportSeen.assign(ctx().processCount(), false);
  }
  return entry;
}

void MonolithicBenOr::onStart() {
  if (2 * t_ >= ctx().processCount())
    throw std::invalid_argument("Ben-Or requires t < n/2");
  enterRound(1);
}

void MonolithicBenOr::enterRound(Round r) {
  round_ = r;
  tallies_.erase(tallies_.begin(), tallies_.lower_bound(r));
  ctx().fanout(makeMessage<ClassicMessage>(r, /*phase=*/1, false, preference_));
  tryAdvance();
}

void MonolithicBenOr::onMessage(ProcessId from, const Message& message) {
  const auto* msg = message.as<ClassicMessage>();
  if (msg == nullptr) return;
  if (msg->round < round_) return;  // stale round

  RoundTally& entry = tally(msg->round);
  if (msg->phase == 1) {
    if (from >= entry.proposalSeen.size() || entry.proposalSeen[from]) return;
    entry.proposalSeen[from] = true;
    ++entry.proposals;
    ++entry.proposalTally[msg->value];
  } else {
    if (from >= entry.reportSeen.size() || entry.reportSeen[from]) return;
    entry.reportSeen[from] = true;
    ++entry.reports;
    if (msg->ratify) {
      ++entry.ratifyTally[msg->value];
      if (!entry.anyRatified) entry.anyRatified = msg->value;
    }
  }
  tryAdvance();
}

void MonolithicBenOr::tryAdvance() {
  const std::size_t n = ctx().processCount();
  for (;;) {
    if (round_ > maxRounds_) return;
    RoundTally& entry = tally(round_);

    if (!entry.reportSent) {
      if (entry.proposals < n - t_) return;
      entry.reportSent = true;
      std::optional<Value> majority;
      for (const auto& [value, count] : entry.proposalTally) {
        if (2 * count > n) {
          majority = value;
          break;
        }
      }
      ctx().fanout(majority
                       ? makeMessage<ClassicMessage>(round_, 2, true,
                                                     *majority)
                       : makeMessage<ClassicMessage>(round_, 2, false,
                                                     kNoValue));
    }

    if (entry.reports < n - t_) return;

    std::optional<Value> committed;
    for (const auto& [value, count] : entry.ratifyTally) {
      if (count > t_) {
        committed = value;
        break;
      }
    }
    if (committed) {
      preference_ = *committed;
      if (!decided_) {
        decided_ = true;
        decisionValue_ = *committed;
        decisionRound_ = round_;
        ctx().decide(*committed);
      }
    } else if (entry.anyRatified) {
      preference_ = *entry.anyRatified;
    } else {
      preference_ = ctx().rng().coin();
    }
    // Advance; enterRound re-runs this loop via its own tryAdvance, so
    // return here to avoid double-advancing.
    enterRound(round_ + 1);
    return;
  }
}

}  // namespace ooc::benor

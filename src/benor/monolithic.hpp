// Classic Ben-Or (1983), implemented monolithically — no template, no
// objects. Serves as the baseline for experiment E1: the decomposed version
// (BenOrVac + CoinReconciliator in ConsensusProcess) must reproduce its
// behaviour, which is evidence that the paper's decomposition is faithful.
//
// The implementation deliberately shares no code with the object version.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/process.hpp"
#include "util/types.hpp"

namespace ooc::benor {

/// Round-tagged wire message of the monolithic implementation.
struct ClassicMessage final : MessageBase<ClassicMessage> {
  ClassicMessage(Round round, int phase, bool ratify, Value value)
      : round(round), phase(phase), ratify(ratify), value(value) {}

  Round round;
  int phase;    // 1 = proposal, 2 = report
  bool ratify;  // meaningful for phase 2
  Value value;

  std::string describe() const override {
    return "classic<r" + std::to_string(round) + ",p" +
           std::to_string(phase) + "," + std::to_string(value) +
           (phase == 2 && ratify ? ",ratify>" : ">");
  }
};

class MonolithicBenOr final : public Process {
 public:
  MonolithicBenOr(Value input, std::size_t faultTolerance,
                  Round maxRounds = 100000);

  void onStart() override;
  void onMessage(ProcessId from, const Message& message) override;

  bool decided() const noexcept { return decided_; }
  Value decisionValue() const noexcept { return decisionValue_; }
  Round decisionRound() const noexcept { return decisionRound_; }
  Round currentRound() const noexcept { return round_; }

 private:
  struct RoundTally {
    std::vector<bool> proposalSeen;
    std::vector<bool> reportSeen;
    std::size_t proposals = 0;
    std::size_t reports = 0;
    std::unordered_map<Value, std::size_t> proposalTally;
    std::unordered_map<Value, std::size_t> ratifyTally;
    std::optional<Value> anyRatified;
    bool reportSent = false;
  };

  RoundTally& tally(Round r);
  void enterRound(Round r);
  void tryAdvance();

  Value preference_;
  std::size_t t_;
  Round maxRounds_;

  Round round_ = 0;
  bool decided_ = false;
  Value decisionValue_ = kNoValue;
  Round decisionRound_ = 0;

  std::map<Round, RoundTally> tallies_;
};

}  // namespace ooc::benor

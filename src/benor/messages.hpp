// Wire messages of Ben-Or's algorithm (paper Algorithm 5): the first-phase
// proposal <1, v> and the second-phase <2, v, ratify> / <2, ?> report.
#pragma once

#include <string>

#include "sim/message.hpp"
#include "util/types.hpp"

namespace ooc::benor {

/// <1, v> — phase-one proposal.
struct ProposalMessage final : MessageBase<ProposalMessage> {
  explicit ProposalMessage(Value value) : value(value) {}
  Value value;

  std::string describe() const override {
    return "benor<1," + std::to_string(value) + ">";
  }
};

/// <2, v, ratify> when ratify is true, otherwise <2, ?>.
struct ReportMessage final : MessageBase<ReportMessage> {
  ReportMessage(bool ratify, Value value) : ratify(ratify), value(value) {}
  bool ratify;
  Value value;  // meaningful only when ratify

  std::string describe() const override {
    return ratify ? "benor<2," + std::to_string(value) + ",ratify>"
                  : "benor<2,?>";
  }
};

/// Lottery reconciliator ticket: the sender's current value; the winning
/// sender is decided by a shared per-round pseudo-random draw.
struct LotteryTicketMessage final : MessageBase<LotteryTicketMessage> {
  explicit LotteryTicketMessage(Value value) : value(value) {}
  Value value;

  std::string describe() const override {
    return "lottery<" + std::to_string(value) + ">";
  }
};

}  // namespace ooc::benor

// Byzantine Ben-Or: the VAC of Ben-Or's asynchronous *Byzantine* variant
// (Ben-Or 1983, §B; presentation follows Aspnes' survey [1]).
//
// Model: asynchronous message passing, t Byzantine processors, n > 5t.
// Same two message waves as the crash version with hardened thresholds:
//
//   VAC_byz(v, m):
//     send <1, v> to all; wait for n-t <1, *>
//     if more than (n+t)/2 carry the same w: send <2, w, ratify>
//     else: send <2, ?>
//     wait for n-t <2, *>
//     more than 3t ratify(w):  return (commit, w)
//     more than  t ratify(w):  return (adopt, w)
//     otherwise:               return (vacillate, v)
//
// Why the thresholds work (all counts are distinct-sender):
//  * Two correct processors cannot ratify different values: each needs
//    > (n+t)/2 of its n-t received to carry its value, and of those at
//    least (n+t)/2 - t = (n-t)/2 come from correct senders — two disjoint
//    correct majorities of size > (n-t)/2 cannot coexist.
//  * adopt level is trustworthy: > t ratifies contain >= 1 correct
//    ratifier, and correct ratify values agree (first bullet), so all
//    adopt values coincide — coherence over vacillate & adopt.
//  * commit coherence: > 3t ratify(w) contain > 2t correct ratifiers, and
//    a correct processor's (n-t)-receipt misses at most t senders, so
//    every correct processor still counts > t ratify(w) — it reaches at
//    least adopt level with the same w.
//  * convergence/validity: with unanimous correct inputs v, every correct
//    processor reports ratify(v) (n-t received minus t hostile still
//    leaves > (n+t)/2 when n > 3t), and any (n-t)-receipt contains
//    >= n-2t > 3t correct ratifiers when n > 5t — everyone commits v.
//
// Domain hardening: this object is used for *binary* consensus under
// Byzantine faults, so values outside {0,1} are discarded on receipt — a
// Byzantine sender must choose a legal ballot or lose its vote (without
// this, validity could be violated by forged > t ratify(u) for garbage u
// when t > 0 colluders vote together; with domain validation a forged
// value is still a *possible input*, preserving validity-as-specified).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/objects.hpp"

namespace ooc::benor {

class ByzantineBenOrVac final : public AgreementDetector {
 public:
  /// `faultTolerance` is t, the number of tolerated Byzantine processors;
  /// requires n > 5t (checked at invoke).
  explicit ByzantineBenOrVac(std::size_t faultTolerance);

  void invoke(ObjectContext& ctx, Value v) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  std::optional<Outcome> result() const override { return outcome_; }

  static DetectorFactory factory(std::size_t faultTolerance);

 private:
  void maybeFinishPhaseOne(ObjectContext& ctx);
  void maybeFinish();

  std::size_t t_;
  Value input_ = kNoValue;
  bool reportSent_ = false;
  std::optional<Outcome> outcome_;

  std::vector<bool> proposalSeen_;
  std::vector<bool> reportSeen_;
  std::size_t proposalCount_ = 0;
  std::size_t reportCount_ = 0;
  std::array<std::size_t, 2> proposalTally_{};
  std::array<std::size_t, 2> ratifyTally_{};
};

}  // namespace ooc::benor

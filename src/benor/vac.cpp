#include "benor/vac.hpp"

#include <stdexcept>

#include "benor/messages.hpp"

namespace ooc::benor {

BenOrVac::BenOrVac(std::size_t faultTolerance) : t_(faultTolerance) {}

void BenOrVac::invoke(ObjectContext& ctx, Value v) {
  if (2 * t_ >= ctx.processCount())
    throw std::invalid_argument("Ben-Or requires t < n/2");
  input_ = v;
  invoked_ = true;
  proposalSeen_.assign(ctx.processCount(), false);
  reportSeen_.assign(ctx.processCount(), false);
  ctx.fanout(makeMessage<ProposalMessage>(v));
}

void BenOrVac::onMessage(ObjectContext& ctx, ProcessId from,
                         const Message& inner) {
  if (!invoked_ || outcome_) return;

  if (const auto* proposal = inner.as<ProposalMessage>()) {
    if (from >= proposalSeen_.size() || proposalSeen_[from]) return;
    proposalSeen_[from] = true;
    ++proposalCount_;
    ++proposalTally_[proposal->value];
    maybeFinishPhaseOne(ctx);
    return;
  }

  if (const auto* report = inner.as<ReportMessage>()) {
    if (from >= reportSeen_.size() || reportSeen_[from]) return;
    reportSeen_[from] = true;
    ++reportCount_;
    if (report->ratify) {
      ++ratifyTally_[report->value];
      if (!anyRatified_) anyRatified_ = report->value;
    }
    maybeFinish();
  }
}

void BenOrVac::maybeFinishPhaseOne(ObjectContext& ctx) {
  const std::size_t n = ctx.processCount();
  if (reportSent_ || proposalCount_ < n - t_) return;
  reportSent_ = true;

  std::optional<Value> majority;
  for (const auto& [value, count] : proposalTally_) {
    if (2 * count > n) {
      majority = value;
      break;  // at most one value can exceed n/2
    }
  }
  if (majority) {
    ctx.fanout(makeMessage<ReportMessage>(/*ratify=*/true, *majority));
  } else {
    ctx.fanout(makeMessage<ReportMessage>(/*ratify=*/false, kNoValue));
  }
  maybeFinish();
}

void BenOrVac::maybeFinish() {
  if (outcome_ || !reportSent_ || reportCount_ < proposalSeen_.size() - t_)
    return;

  for (const auto& [value, count] : ratifyTally_) {
    if (count > t_) {
      outcome_ = Outcome{Confidence::kCommit, value};
      return;
    }
  }
  if (anyRatified_) {
    outcome_ = Outcome{Confidence::kAdopt, *anyRatified_};
    return;
  }
  outcome_ = Outcome{Confidence::kVacillate, input_};
}

DetectorFactory BenOrVac::factory(std::size_t faultTolerance) {
  return [faultTolerance](Round) {
    return std::make_unique<BenOrVac>(faultTolerance);
  };
}

}  // namespace ooc::benor

#include "store/wal.hpp"

#include <array>

namespace ooc::store {
namespace {

std::array<std::uint32_t, 256> makeCrcTable() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t getU32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t getU64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(getU32(p)) |
         (static_cast<std::uint64_t>(getU32(p + 4)) << 32);
}

constexpr std::size_t kHeaderBytes = 8;  // length:u32 + crc:u32

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

WriteAheadLog::WriteAheadLog(FaultConfig faults) noexcept : faults_(faults) {}

void WriteAheadLog::append(const std::vector<std::uint64_t>& words) {
  std::vector<std::uint8_t> payload;
  payload.reserve(words.size() * 8);
  for (std::uint64_t w : words) {
    putU32(payload, static_cast<std::uint32_t>(w));
    putU32(payload, static_cast<std::uint32_t>(w >> 32));
  }
  putU32(pending_, static_cast<std::uint32_t>(payload.size()));
  putU32(pending_, crc32(payload.data(), payload.size()));
  pending_.insert(pending_.end(), payload.begin(), payload.end());
  ++appends_;
}

void WriteAheadLog::sync() {
  durable_.insert(durable_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  ++syncs_;
}

void WriteAheadLog::crash(Rng& rng) {
  ++crashes_;
  if (!pending_.empty() && rng.chance(faults_.tornTailProbability)) {
    // A strict prefix of the unsynced tail reached the platter. It may
    // contain whole records (written but not fsynced — allowed to survive;
    // sync() only promises a lower bound) followed by a torn one.
    const std::size_t keep =
        static_cast<std::size_t>(rng.below(pending_.size()));
    durable_.insert(durable_.end(), pending_.begin(),
                    pending_.begin() + static_cast<std::ptrdiff_t>(keep));
  }
  pending_.clear();
  if (!durable_.empty() && rng.chance(faults_.corruptProbability)) {
    const std::size_t at = static_cast<std::size_t>(rng.below(durable_.size()));
    durable_[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
  }
}

std::vector<std::vector<std::uint64_t>> WriteAheadLog::recover(
    RecoveryReport* report) {
  RecoveryReport local;
  std::vector<std::vector<std::uint64_t>> records;
  std::size_t offset = 0;
  while (offset < durable_.size()) {
    if (durable_.size() - offset < kHeaderBytes) {
      local.tornTail = true;  // header itself is partial
      break;
    }
    const std::uint32_t length = getU32(durable_.data() + offset);
    const std::uint32_t crc = getU32(durable_.data() + offset + 4);
    if (durable_.size() - offset - kHeaderBytes < length) {
      local.tornTail = true;  // payload cut short by the crash
      break;
    }
    const std::uint8_t* payload = durable_.data() + offset + kHeaderBytes;
    if (crc32(payload, length) != crc || length % 8 != 0) {
      // A full-size record that fails its checksum is corruption, not a
      // torn write. We cannot trust anything past it (lengths downstream
      // may themselves be garbage), so truncate here like the torn case.
      ++local.corruptRecords;
      break;
    }
    std::vector<std::uint64_t> words(length / 8);
    for (std::size_t i = 0; i < words.size(); ++i) {
      words[i] = getU64(payload + i * 8);
    }
    records.push_back(std::move(words));
    offset += kHeaderBytes + length;
  }
  local.recordsRecovered = records.size();
  local.bytesDiscarded = (durable_.size() - offset) + pending_.size();
  durable_.resize(offset);
  pending_.clear();
  if (report != nullptr) {
    *report = local;
  }
  return records;
}

}  // namespace ooc::store

// Simulated stable storage: a per-process write-ahead log with CRC-checked
// records, an explicit sync() durability barrier, and crash fault injection.
//
// The "device" is an in-memory byte image split in two regions:
//
//   [ durable bytes | pending bytes ]
//                   ^-- sync() moves this boundary to the right
//
// append() buffers a record at the pending tail; sync() is the fsync
// analogue that makes everything appended so far durable. crash() simulates
// power loss: pending bytes vanish — except, under fault injection, a torn
// prefix of them may reach the platter (a partially written tail record),
// and a byte of the durable region may flip (silent corruption, caught by
// the per-record CRC at recovery). recover() scans the durable image and
// returns every intact record in append order, truncating at the first
// torn or corrupt record exactly like a real log-structured store.
//
// Records are vectors of u64 words (enough for protocol metadata: term,
// vote, log entries, ballots, values); on the device each record is
//
//   [ length:u32 | crc32:u32 | payload bytes ]   (little-endian)
//
// Everything is deterministic: crash() draws from a caller-supplied Rng, so
// a simulation run containing storage faults is still a pure function of
// (configuration, seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ooc::store {

/// What recover() found while scanning the durable image.
struct RecoveryReport {
  std::size_t recordsRecovered = 0;  ///< intact records returned
  bool tornTail = false;             ///< partial record truncated at the end
  std::size_t corruptRecords = 0;    ///< CRC-mismatch records truncated
  std::size_t bytesDiscarded = 0;    ///< device bytes dropped by truncation
};

/// Fault injection applied at crash() time.
struct FaultConfig {
  /// Probability that a crash leaves a strict prefix of the unsynced tail
  /// on the device (a torn record for recovery to detect and truncate).
  double tornTailProbability = 0.0;
  /// Probability that a crash flips one bit somewhere in the durable
  /// region (silent corruption, detected by CRC at recovery).
  double corruptProbability = 0.0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte span.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept;

class WriteAheadLog {
 public:
  explicit WriteAheadLog(FaultConfig faults = {}) noexcept;

  /// Buffers one record at the pending tail. NOT durable until sync().
  void append(const std::vector<std::uint64_t>& words);

  /// Durability barrier: every record appended so far survives crashes.
  void sync();

  /// Simulated power loss. Unsynced bytes are lost; with fault injection a
  /// torn prefix of the pending tail may survive, and one durable bit may
  /// flip. Deterministic given `rng`.
  void crash(Rng& rng);

  /// Scans the durable image and returns every intact record in append
  /// order. Truncates the image at the first torn or corrupt record (so a
  /// subsequent append continues from a clean state) and discards any
  /// pending bytes. Idempotent when the image is clean.
  std::vector<std::vector<std::uint64_t>> recover(RecoveryReport* report = nullptr);

  // Introspection (used by harness metrics and tests).
  std::uint64_t appends() const noexcept { return appends_; }
  std::uint64_t syncs() const noexcept { return syncs_; }
  std::uint64_t crashes() const noexcept { return crashes_; }
  std::size_t durableBytes() const noexcept { return durable_.size(); }
  std::size_t pendingBytes() const noexcept { return pending_.size(); }
  const FaultConfig& faults() const noexcept { return faults_; }

 private:
  FaultConfig faults_;
  std::vector<std::uint8_t> durable_;  // survives crash()
  std::vector<std::uint8_t> pending_;  // appended but not yet synced
  std::uint64_t appends_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t crashes_ = 0;
};

}  // namespace ooc::store

// A complete Raft node (paper §4.3; Ongaro & Ousterhout 2014).
//
// Implements leader election with randomized timeouts, log replication with
// the AppendEntries consistency check and NextIndex backtracking,
// commit-index advancement restricted to current-term entries, and in-order
// application to the state machine. Together these give the three
// properties the paper leans on: Leader Completeness, State Machine Safety
// and Log Matching.
//
// Fault surface: the simulator provides crashes (permanent or
// crash-restart), message delay, loss, duplication and partitions. Terms
// make all of it safe; the randomized election timer provides liveness once
// the paper's timing property (broadcast time << election timeout << MTBF)
// holds. Crash-restart safety additionally requires RaftConfig::durable
// with the sync-before-reply discipline: the node journals
// currentTerm/votedFor/log to a simulated write-ahead log (store/wal.hpp)
// and recovers from it in onRestart().
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "raft/messages.hpp"
#include "raft/types.hpp"
#include "sim/process.hpp"
#include "store/wal.hpp"

namespace ooc::raft {

class RaftProcess : public Process {
 public:
  explicit RaftProcess(RaftConfig config);

  // --- client API ----------------------------------------------------------
  /// Appends a command if this node currently leads; returns whether it did.
  bool submit(Value command);

  // --- inspection ----------------------------------------------------------
  Role role() const noexcept { return role_; }
  Term currentTerm() const noexcept { return currentTerm_; }
  LogIndex commitIndex() const noexcept { return commitIndex_; }
  LogIndex lastApplied() const noexcept { return lastApplied_; }
  LogIndex lastLogIndex() const noexcept {
    return snapshotIndex_ + log_.size();
  }
  /// Retained suffix: entries with indices (snapshotIndex, lastLogIndex].
  const std::vector<LogEntry>& log() const noexcept { return log_; }
  /// Highest index covered by the local snapshot (0 = none).
  LogIndex snapshotIndex() const noexcept { return snapshotIndex_; }
  std::uint64_t snapshotsInstalled() const noexcept {
    return snapshotsInstalled_;
  }
  std::uint64_t snapshotsTaken() const noexcept { return snapshotsTaken_; }
  std::uint64_t electionsStarted() const noexcept {
    return electionsStarted_;
  }
  std::uint64_t timesElectedLeader() const noexcept {
    return timesElectedLeader_;
  }

  /// One entry per vote cast (self-votes included), across every
  /// incarnation of this node. This is the run monitor's ground truth for
  /// the no-vote-amnesia invariant: two entries with the same term but
  /// different candidates mean a restart erased a vote that a candidate may
  /// already have counted.
  struct VoteRecord {
    Term term = 0;
    ProcessId candidate = 0;
    std::uint32_t incarnation = 0;
  };
  const std::vector<VoteRecord>& voteHistory() const noexcept {
    return voteHistory_;
  }

  /// Durability introspection (null / zero when !config().durable).
  const store::WriteAheadLog* wal() const noexcept { return wal_.get(); }
  std::uint64_t recoveries() const noexcept { return recoveries_; }
  const store::RecoveryReport& lastRecovery() const noexcept {
    return lastRecovery_;
  }

  // --- Process interface ---------------------------------------------------
  void onStart() override;
  void onMessage(ProcessId from, const Message& message) override;
  void onTimer(TimerId id) override;
  void onCrash() override;
  void onRestart() override;

 protected:
  /// Applied in log order, exactly once per index (State Machine Safety).
  virtual void onApply(LogIndex index, const LogEntry& entry);
  /// This node just won an election for currentTerm().
  virtual void onBecameLeader() {}
  /// A follower accepted new entries (the paper's "first kind" of
  /// AppendEntries — tentative, not yet covered by the commit index).
  virtual void onEntriesAccepted() {}
  /// commitIndex advanced (the paper's "second kind").
  virtual void onCommitAdvanced() {}
  /// Role transition hook (old role passed; new role via role()).
  virtual void onRoleChanged(Role /*oldRole*/) {}
  /// The election timer fired and a new election is about to start — the
  /// template decomposition's reconciliator moment (Algorithm 11).
  virtual void onElectionTimeout() {}
  /// A restart is in progress: volatile subclass state must be discarded
  /// NOW, before the journal is replayed (replay may re-apply entries and
  /// re-restore snapshots under the new incarnation).
  virtual void onVolatileReset() {}

  /// Raft §8 liveness hook: a command the subclass's state machine treats
  /// as a no-op. The commit rule (advanceCommitIndex counts only
  /// current-term entries) means a fresh leader whose log ends in
  /// prior-term entries cannot advance the commit index until something is
  /// appended in its own term. If every client command it is offered is
  /// already sitting in that uncommitted tail — submit-side dedup — nothing
  /// ever is, and the cluster stalls under a perfectly stable leader.
  /// Returning a value makes becomeLeader() append it as a current-term
  /// barrier entry whenever an uncommitted tail exists, which flushes the
  /// tail on the next quorum of replies. The default (nullopt) keeps the
  /// single-decree consensus usage no-op-free: there, the new leader always
  /// has a fresh proposal of its own to append.
  virtual std::optional<Value> leaderBarrier() const { return std::nullopt; }

  /// Snapshot support: serialize the state machine as applied through
  /// lastApplied() (opaque payload shipped in InstallSnapshot), and restore
  /// from such a payload. Subclasses with state must override both;
  /// the defaults carry no state (fine for the single-command consensus
  /// usage, whose decision hook re-fires via onCommitAdvanced).
  virtual std::vector<Value> captureSnapshot() const { return {}; }
  virtual void restoreSnapshot(const std::vector<Value>& /*state*/) {}

  /// Discards applied entries up to `upto` (must be <= lastApplied) after
  /// capturing a snapshot. Invoked automatically per
  /// RaftConfig::compactionThreshold; callable manually.
  void compactTo(LogIndex upto);

  const RaftConfig& config() const noexcept { return config_; }

 private:
  Term lastLogTerm() const noexcept {
    return log_.empty() ? snapshotTerm_ : log_.back().term;
  }
  /// Term of `index`, which may be the snapshot boundary.
  Term termAt(LogIndex index) const {
    return index == snapshotIndex_ ? snapshotTerm_ : entryAt(index).term;
  }
  const LogEntry& entryAt(LogIndex index) const {
    return log_[index - snapshotIndex_ - 1];
  }

  void becomeFollower(Term term);
  void becomeCandidate();
  void becomeLeader();
  void resetElectionTimer();
  void stopElectionTimer();
  void startHeartbeatTimer();
  void sendAppendTo(ProcessId peer);
  void broadcastAppends();
  void advanceCommitIndex();
  void applyCommitted();

  void handleRequestVote(ProcessId from, const RequestVote& msg);
  void handleRequestVoteReply(ProcessId from, const RequestVoteReply& msg);
  void handleAppendEntries(ProcessId from, const AppendEntries& msg);
  void handleAppendEntriesReply(ProcessId from,
                                const AppendEntriesReply& msg);
  void handleInstallSnapshot(ProcessId from, const InstallSnapshot& msg);
  void maybeAutoCompact();

  // Journalling. Every mutation of persistent state appends a record; with
  // syncBeforeReply the append is synced immediately, so the state is
  // durable before any message referencing it can be sent.
  void persist(std::vector<std::uint64_t> record);
  void persistMeta();
  void persistEntry(const LogEntry& entry);
  void persistTruncate();
  void persistSnapshot();
  void recordVote(ProcessId candidate);

  RaftConfig config_;

  // Persistent state. The in-memory copy is authoritative while the node
  // is up; with RaftConfig::durable every mutation is also journalled to
  // wal_, and onRestart() rebuilds these fields from whatever the journal
  // recovers (which may be a stale prefix under crash-before-sync).
  Term currentTerm_ = 0;
  std::optional<ProcessId> votedFor_;
  std::vector<LogEntry> log_;
  LogIndex snapshotIndex_ = 0;
  Term snapshotTerm_ = 0;
  std::uint64_t snapshotsTaken_ = 0;
  std::uint64_t snapshotsInstalled_ = 0;

  // Volatile state.
  Role role_ = Role::kFollower;
  LogIndex commitIndex_ = 0;
  LogIndex lastApplied_ = 0;

  // Candidate state.
  std::vector<bool> votesGranted_;

  // Leader state (reinitialized on every election win).
  std::vector<LogIndex> nextIndex_;
  std::vector<LogIndex> matchIndex_;

  TimerId electionTimer_ = 0;
  TimerId heartbeatTimer_ = 0;

  std::uint64_t electionsStarted_ = 0;
  std::uint64_t timesElectedLeader_ = 0;

  // Simulated stable storage (null unless config_.durable).
  std::unique_ptr<store::WriteAheadLog> wal_;
  std::uint64_t recoveries_ = 0;
  store::RecoveryReport lastRecovery_;
  std::vector<VoteRecord> voteHistory_;
};

}  // namespace ooc::raft

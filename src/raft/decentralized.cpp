#include "raft/decentralized.hpp"

#include <stdexcept>

namespace ooc::raft {

DecentralizedRaftVac::DecentralizedRaftVac(std::size_t faultTolerance)
    : t_(faultTolerance) {}

void DecentralizedRaftVac::invoke(ObjectContext& ctx, Value v) {
  if (2 * t_ >= ctx.processCount())
    throw std::invalid_argument("decentralized raft requires t < n/2");
  input_ = v;
  proposalSeen_.assign(ctx.processCount(), false);
  commitSeen_.assign(ctx.processCount(), false);
  ctx.fanout(makeMessage<DecProposeMessage>(v));
}

void DecentralizedRaftVac::onMessage(ObjectContext& ctx, ProcessId from,
                                     const Message& inner) {
  if (outcome_) return;

  if (const auto* propose = inner.as<DecProposeMessage>()) {
    if (from >= proposalSeen_.size() || proposalSeen_[from]) return;
    proposalSeen_[from] = true;
    ++proposalCount_;
    ++proposalTally_[propose->value];
    maybeFinishProposals(ctx);
    return;
  }

  if (const auto* commit = inner.as<DecCommitMessage>()) {
    if (from >= commitSeen_.size() || commitSeen_[from]) return;
    commitSeen_[from] = true;
    ++commitPhaseCount_;
    if (commit->commit) {
      ++commitTally_[commit->value];
      if (!anyCommitSeen_) anyCommitSeen_ = commit->value;
    }
    maybeFinish();
  }
}

void DecentralizedRaftVac::maybeFinishProposals(ObjectContext& ctx) {
  const std::size_t n = ctx.processCount();
  if (commitPhaseSent_ || proposalCount_ < n - t_) return;
  commitPhaseSent_ = true;

  std::optional<Value> majority;
  for (const auto& [value, count] : proposalTally_) {
    if (2 * count > n) {
      majority = value;
      break;
    }
  }
  ctx.fanout(majority ? makeMessage<DecCommitMessage>(true, *majority)
                      : makeMessage<DecCommitMessage>(false, kNoValue));
  maybeFinish();
}

void DecentralizedRaftVac::maybeFinish() {
  if (outcome_ || !commitPhaseSent_ ||
      commitPhaseCount_ < proposalSeen_.size() - t_) {
    return;
  }
  for (const auto& [value, count] : commitTally_) {
    if (count > t_) {
      outcome_ = Outcome{Confidence::kCommit, value};
      return;
    }
  }
  if (anyCommitSeen_) {
    outcome_ = Outcome{Confidence::kAdopt, *anyCommitSeen_};
    return;
  }
  outcome_ = Outcome{Confidence::kVacillate, input_};
}

DetectorFactory DecentralizedRaftVac::factory(std::size_t faultTolerance) {
  return [faultTolerance](Round) {
    return std::make_unique<DecentralizedRaftVac>(faultTolerance);
  };
}

}  // namespace ooc::raft

#include "raft/consensus.hpp"

namespace ooc::raft {

RaftConsensus::RaftConsensus(Value input, RaftConfig config)
    : RaftProcess(config), input_(input) {}

Value RaftConsensus::preferredValue() const noexcept {
  return log().empty() ? input_ : log().back().command;
}

void RaftConsensus::record(Confidence confidence, Value value) {
  if (!confidenceLog_.empty() &&
      confidenceLog_.back().confidence == confidence &&
      confidenceLog_.back().value == value &&
      confidenceLog_.back().term == currentTerm()) {
    return;  // no transition
  }
  confidenceLog_.push_back(
      ConfidenceChange{currentTerm(), confidence, value, ctx().now()});
}

void RaftConsensus::onApply(LogIndex index, const LogEntry& entry) {
  // D&S(v): decide on the first applied command, stop applying thereafter.
  if (stopApplying_) return;
  stopApplying_ = true;
  (void)index;
  decided_ = true;
  decisionValue_ = entry.command;
  decisionHistory_.push_back(entry.command);
  ctx().decide(entry.command);
}

void RaftConsensus::onVolatileReset() {
  // Crash-restart: the decided-flag and D&S stop-bit are volatile — the
  // reborn node re-derives its decision from the recovered journal (the
  // base class replays it right after this hook, possibly re-invoking
  // onApply/restoreSnapshot). decisionHistory_ and confidenceLog_ are run
  // monitor state, not process state: they deliberately survive so the
  // checker can compare what different incarnations announced.
  decided_ = false;
  stopApplying_ = false;
  decisionValue_ = kNoValue;
  // No evidence survives into the new incarnation's view: fall back to
  // vacillate with the input as the preference (the log is empty until
  // journal replay restores it).
  record(Confidence::kVacillate, preferredValue());
}

void RaftConsensus::onBecameLeader() {
  // Algorithm 10: leadership won => (Adopt, log[lastLogIndex].value) BEFORE
  // replicating; then Algorithm 7: replicate D&S(v*), proposing our own
  // input if the log is empty. (submit() can commit immediately on a
  // single-node cluster, so the adopt record must precede it.)
  record(Confidence::kAdopt, preferredValue());
  if (log().empty()) {
    submit(input_);
  } else if (log().back().term != currentTerm()) {
    // The commit rule only counts replicas of current-term entries, so a
    // leader whose log holds only inherited entries could heartbeat forever
    // without ever advancing commitIndex (Raft §5.4.2). Re-propose the
    // inherited value under the current term to unblock commitment.
    submit(preferredValue());
  }
}

void RaftConsensus::onEntriesAccepted() {
  // AppendEntries of the first kind accepted: tentative knowledge that a
  // majority-backed leader proposed this value.
  record(Confidence::kAdopt, preferredValue());
}

void RaftConsensus::onCommitAdvanced() {
  record(Confidence::kCommit, preferredValue());
}

void RaftConsensus::onElectionTimeout() {
  // Algorithm 11 (reconciliator): reset timer, bump term, keep the last
  // log value as the preference. The timer reset and term bump are done by
  // the Raft machinery; here we account the invocation and fall back to
  // vacillate: the processor has no evidence about the system state.
  ++reconciliatorInvocations_;
  record(Confidence::kVacillate, preferredValue());
}

void RaftConsensus::onRoleChanged(Role oldRole) {
  (void)oldRole;
}

}  // namespace ooc::raft

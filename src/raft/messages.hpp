// Raft RPCs as simulator messages (paper §4.3 Figure 1).
//
// RPCs are modelled as message pairs (request / reply) over the simulated
// network; like every message in this library they may be delayed, lost or
// duplicated depending on the run's network model, which is exactly the
// failure surface Raft's term and consistency-check machinery exists for.
#pragma once

#include <string>
#include <vector>

#include "raft/types.hpp"
#include "sim/message.hpp"

namespace ooc::raft {

/// RequestVote[term, candidateId, lastLogIndex, lastLogTerm]
struct RequestVote final : MessageBase<RequestVote> {
  RequestVote(Term term, ProcessId candidate, LogIndex lastLogIndex,
              Term lastLogTerm)
      : term(term),
        candidate(candidate),
        lastLogIndex(lastLogIndex),
        lastLogTerm(lastLogTerm) {}

  Term term;
  ProcessId candidate;
  LogIndex lastLogIndex;
  Term lastLogTerm;

  std::string describe() const override {
    return "RequestVote{t=" + std::to_string(term) +
           ",c=" + std::to_string(candidate) + "}";
  }
};

/// ack_RequestVote[term, voteGranted]
struct RequestVoteReply final : MessageBase<RequestVoteReply> {
  RequestVoteReply(Term term, bool granted) : term(term), granted(granted) {}

  Term term;
  bool granted;

  std::string describe() const override {
    return std::string("VoteReply{t=") + std::to_string(term) + "," +
           (granted ? "granted" : "denied") + "}";
  }
};

/// AppendEntries[term, leaderId, prevLogIndex, prevLogTerm, entries,
/// leaderCommit]. An empty `entries` is a heartbeat / pure commit-index
/// advance — the paper's "second kind" of AppendEntries.
struct AppendEntries final : MessageBase<AppendEntries> {
  AppendEntries(Term term, ProcessId leader, LogIndex prevLogIndex,
                Term prevLogTerm, std::vector<LogEntry> entries,
                LogIndex leaderCommit)
      : term(term),
        leader(leader),
        prevLogIndex(prevLogIndex),
        prevLogTerm(prevLogTerm),
        entries(std::move(entries)),
        leaderCommit(leaderCommit) {}

  Term term;
  ProcessId leader;
  LogIndex prevLogIndex;
  Term prevLogTerm;
  std::vector<LogEntry> entries;
  LogIndex leaderCommit;

  std::string describe() const override {
    return "AppendEntries{t=" + std::to_string(term) +
           ",l=" + std::to_string(leader) +
           ",prev=" + std::to_string(prevLogIndex) +
           ",n=" + std::to_string(entries.size()) +
           ",commit=" + std::to_string(leaderCommit) + "}";
  }
};

/// ack_AppendEntries[term, success] (+ matchIndex so the leader can update
/// MatchIndex without inferring it from resend bookkeeping).
struct AppendEntriesReply final : MessageBase<AppendEntriesReply> {
  AppendEntriesReply(Term term, bool success, LogIndex matchIndex)
      : term(term), success(success), matchIndex(matchIndex) {}

  Term term;
  bool success;
  LogIndex matchIndex;  // highest index known replicated when success

  std::string describe() const override {
    return std::string("AppendReply{t=") + std::to_string(term) + "," +
           (success ? "ok" : "reject") +
           ",match=" + std::to_string(matchIndex) + "}";
  }
};

/// InstallSnapshot[term, leaderId, lastIncludedIndex, lastIncludedTerm,
/// state]: ships the leader's state-machine snapshot to a follower whose
/// next needed entry was compacted away. `state` is the opaque snapshot
/// payload produced by RaftProcess::captureSnapshot.
struct InstallSnapshot final : MessageBase<InstallSnapshot> {
  InstallSnapshot(Term term, ProcessId leader, LogIndex lastIncludedIndex,
                  Term lastIncludedTerm, std::vector<Value> state)
      : term(term),
        leader(leader),
        lastIncludedIndex(lastIncludedIndex),
        lastIncludedTerm(lastIncludedTerm),
        state(std::move(state)) {}

  Term term;
  ProcessId leader;
  LogIndex lastIncludedIndex;
  Term lastIncludedTerm;
  std::vector<Value> state;

  std::string describe() const override {
    return "InstallSnapshot{t=" + std::to_string(term) +
           ",upto=" + std::to_string(lastIncludedIndex) + "}";
  }
};

}  // namespace ooc::raft

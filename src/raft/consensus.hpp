// Consensus via Raft with the single D&S(v) command (paper §4.3,
// Algorithms 7–9), plus the paper's VAC/reconciliator instrumentation
// (Algorithms 10–11).
//
// D&S(v) — "decide-and-stop-applying" — makes the replicated log a consensus
// object: every node decides on the command in the FIRST log slot it
// applies, and ignores everything after. Leader Completeness + Log Matching
// guarantee all nodes apply the same first entry.
//
// The instrumentation records the paper's three per-term knowledge states:
//   vacillate — no evidence a leader was chosen (term start / timeout);
//   adopt     — accepted an AppendEntries of the first kind (tentative
//               entry, commit index unchanged), or won leadership;
//   commit    — the commit index advanced over the decided entry.
// The reconciliator (Algorithm 11) is the election-timeout moment: reset
// timer, bump term, keep the value in the last log slot. The recorded
// transition log drives experiment E7.
#pragma once

#include <vector>

#include "core/confidence.hpp"
#include "raft/raft_process.hpp"

namespace ooc::raft {

class RaftConsensus : public RaftProcess {
 public:
  RaftConsensus(Value input, RaftConfig config);

  bool decided() const noexcept { return decided_; }
  Value decisionValue() const noexcept { return decisionValue_; }

  /// One entry per confidence transition, in simulation order.
  struct ConfidenceChange {
    Term term = 0;
    Confidence confidence = Confidence::kVacillate;
    Value value = kNoValue;
    Tick at = 0;
  };
  const std::vector<ConfidenceChange>& confidenceLog() const noexcept {
    return confidenceLog_;
  }
  Confidence confidence() const noexcept {
    return confidenceLog_.empty() ? Confidence::kVacillate
                                  : confidenceLog_.back().confidence;
  }
  /// Reconciliator invocations (election timeouts) observed (Algorithm 11).
  std::uint64_t reconciliatorInvocations() const noexcept {
    return reconciliatorInvocations_;
  }

  /// Every decision this node announced, across all incarnations (a restart
  /// resets the volatile decided-flag, so a recovered node re-derives its
  /// decision from its journal — or, under crash-before-sync, possibly a
  /// DIFFERENT one). Two differing entries are committed-entry regression:
  /// the run monitor's ground truth for the no-commit-regression invariant.
  const std::vector<Value>& decisionHistory() const noexcept {
    return decisionHistory_;
  }

 protected:
  void onApply(LogIndex index, const LogEntry& entry) override;
  /// Snapshot support (only exercised when compaction is enabled): the
  /// decision IS the state machine, so the payload is the decided value.
  std::vector<Value> captureSnapshot() const override {
    return decided_ ? std::vector<Value>{decisionValue_}
                    : std::vector<Value>{};
  }
  void restoreSnapshot(const std::vector<Value>& state) override {
    if (!state.empty() && !stopApplying_) {
      stopApplying_ = true;
      decided_ = true;
      decisionValue_ = state.front();
      decisionHistory_.push_back(state.front());
      ctx().decide(state.front());
    }
  }
  void onBecameLeader() override;
  void onEntriesAccepted() override;
  void onCommitAdvanced() override;
  void onElectionTimeout() override;
  void onRoleChanged(Role oldRole) override;
  void onVolatileReset() override;

 private:
  void record(Confidence confidence, Value value);
  /// The paper's v* = log[lastLogIndex].value, falling back to the input.
  Value preferredValue() const noexcept;

  Value input_;
  bool decided_ = false;
  bool stopApplying_ = false;
  Value decisionValue_ = kNoValue;
  std::vector<ConfidenceChange> confidenceLog_;
  std::uint64_t reconciliatorInvocations_ = 0;
  std::vector<Value> decisionHistory_;
};

}  // namespace ooc::raft

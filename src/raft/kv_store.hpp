// A replicated key-value store on top of RaftProcess — the conventional use
// of Raft ("producing a consistent log among distributed systems", §4.3),
// used by the replicated_log example and the log-replication tests.
//
// Commands are packed into the library's 64-bit Value: the key in the high
// 32 bits, the value in the low 32. Raft replicates opaque commands, so
// this costs nothing in generality while keeping LogEntry trivially
// copyable.
#pragma once

#include <cstdint>
#include <map>

#include "raft/raft_process.hpp"

namespace ooc::raft {

/// Packs (key, value) into a log command.
constexpr Value packKv(std::uint32_t key, std::uint32_t value) noexcept {
  return static_cast<Value>((static_cast<std::uint64_t>(key) << 32) | value);
}
constexpr std::uint32_t kvKey(Value command) noexcept {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(command) >>
                                    32);
}
constexpr std::uint32_t kvValue(Value command) noexcept {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(command));
}

class KvStoreNode final : public RaftProcess {
 public:
  explicit KvStoreNode(RaftConfig config) : RaftProcess(config) {}

  /// Submits Set(key, value) if this node leads; returns whether it did.
  bool set(std::uint32_t key, std::uint32_t value) {
    return submit(packKv(key, value));
  }

  /// The applied (committed) state.
  const std::map<std::uint32_t, std::uint32_t>& data() const noexcept {
    return data_;
  }
  std::uint64_t appliedCount() const noexcept { return applied_; }

 protected:
  void onApply(LogIndex, const LogEntry& entry) override {
    data_[kvKey(entry.command)] = kvValue(entry.command);
    ++applied_;
  }

  /// Snapshot payload: the packed (key, value) pairs of the applied state.
  std::vector<Value> captureSnapshot() const override {
    std::vector<Value> state;
    state.reserve(data_.size());
    for (const auto& [key, value] : data_) state.push_back(packKv(key, value));
    return state;
  }

  void restoreSnapshot(const std::vector<Value>& state) override {
    data_.clear();
    for (Value command : state)
      data_[kvKey(command)] = kvValue(command);
    // Applied-command accounting restarts from the snapshot content; the
    // counter tracks work this node performed, so keep it monotonic by
    // counting the restored entries as applied.
    applied_ = std::max<std::uint64_t>(applied_, data_.size());
  }

 private:
  std::map<std::uint32_t, std::uint32_t> data_;
  std::uint64_t applied_ = 0;
};

}  // namespace ooc::raft

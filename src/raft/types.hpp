// Core Raft types (paper §4.3; Ongaro & Ousterhout 2014).
#pragma once

#include <cstdint>
#include <string>

#include "store/wal.hpp"
#include "util/types.hpp"

namespace ooc::raft {

using Term = std::uint64_t;
/// Log indices are 1-based as in the Raft paper; 0 means "none".
using LogIndex = std::uint64_t;

enum class Role : unsigned char { kFollower, kCandidate, kLeader };

inline const char* toString(Role role) noexcept {
  switch (role) {
    case Role::kFollower: return "follower";
    case Role::kCandidate: return "candidate";
    case Role::kLeader: return "leader";
  }
  return "?";
}

/// One log slot: a command and the term in which the leader received it.
/// In the paper's consensus usage, every command is D&S(v) — "decide v and
/// stop applying" — so the command payload is just the value.
struct LogEntry {
  Term term = 0;
  Value command = kNoValue;

  friend bool operator==(const LogEntry&, const LogEntry&) = default;
};

struct RaftConfig {
  /// Election timeout is drawn uniformly from [min, max] ticks. The paper's
  /// timing property needs broadcastTime << electionTimeout; with unit-ish
  /// message delays the defaults satisfy it comfortably.
  Tick electionTimeoutMin = 150;
  Tick electionTimeoutMax = 300;
  /// Leader heartbeat / replication retry period.
  Tick heartbeatInterval = 40;
  /// Cap on entries shipped per AppendEntries (backtracking resends more).
  std::size_t maxEntriesPerAppend = 64;
  /// Log compaction: when the applied prefix beyond the last snapshot
  /// reaches this many entries, the node snapshots its state machine and
  /// discards the prefix; followers that lag past the snapshot are caught
  /// up via InstallSnapshot. 0 disables compaction.
  std::uint64_t compactionThreshold = 0;
  /// Crash-recovery durability. When `durable`, the node journals its
  /// persistent state (currentTerm/votedFor/log/snapshots) to a simulated
  /// write-ahead log and re-initializes from it after a crash-restart
  /// (Simulator::restartAt). Without it a restart is a fresh boot.
  bool durable = false;
  /// fsync discipline: true syncs the journal after every append, so every
  /// state change is durable before any message that references it leaves
  /// the node (the safe discipline). false never syncs — the
  /// crash-before-sync fault — so recovery sees a stale prefix and vote
  /// amnesia / committed-entry regression become reachable.
  bool syncBeforeReply = true;
  /// Storage fault injection applied when a crash hits the journal.
  store::FaultConfig storage;
};

}  // namespace ooc::raft

#include "raft/raft_process.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/logging.hpp"

namespace ooc::raft {
namespace {

// Journal record tags (first word of every WAL record).
constexpr std::uint64_t kRecMeta = 1;      // {tag, term, votedFor+1 (0=none)}
constexpr std::uint64_t kRecEntry = 2;     // {tag, term, command}
constexpr std::uint64_t kRecTruncate = 3;  // {tag, new last absolute index}
// {tag, snapshotIndex, snapshotTerm, logLen, (term,cmd)*, stateLen, state*}
// — the full post-snapshot log image, so replay needs no re-deciding of
// which suffix survived an InstallSnapshot.
constexpr std::uint64_t kRecSnapshot = 4;

std::uint64_t encodeValue(Value v) noexcept {
  return std::bit_cast<std::uint64_t>(static_cast<std::int64_t>(v));
}

Value decodeValue(std::uint64_t w) noexcept {
  return static_cast<Value>(std::bit_cast<std::int64_t>(w));
}

}  // namespace

RaftProcess::RaftProcess(RaftConfig config) : config_(config) {
  if (config_.durable)
    wal_ = std::make_unique<store::WriteAheadLog>(config_.storage);
}

void RaftProcess::onStart() {
  votesGranted_.assign(ctx().processCount(), false);
  nextIndex_.assign(ctx().processCount(), 1);
  matchIndex_.assign(ctx().processCount(), 0);
  resetElectionTimer();
}

void RaftProcess::onCrash() {
  if (wal_) wal_->crash(ctx().rng());
}

void RaftProcess::onRestart() {
  // Everything below is volatile across a restart; the journal replay
  // rebuilds the persistent fields from whatever survived the crash.
  currentTerm_ = 0;
  votedFor_.reset();
  log_.clear();
  snapshotIndex_ = 0;
  snapshotTerm_ = 0;
  role_ = Role::kFollower;
  commitIndex_ = 0;
  lastApplied_ = 0;
  votesGranted_.assign(ctx().processCount(), false);
  nextIndex_.assign(ctx().processCount(), 1);
  matchIndex_.assign(ctx().processCount(), 0);
  // The simulator already purged this node's timers at the crash.
  electionTimer_ = 0;
  heartbeatTimer_ = 0;
  ++recoveries_;
  onVolatileReset();
  if (wal_) {
    for (const std::vector<std::uint64_t>& rec :
         wal_->recover(&lastRecovery_)) {
      if (rec.empty()) continue;
      switch (rec[0]) {
        case kRecMeta:
          if (rec.size() == 3) {
            currentTerm_ = rec[1];
            if (rec[2] == 0) {
              votedFor_.reset();
            } else {
              votedFor_ = static_cast<ProcessId>(rec[2] - 1);
            }
          }
          break;
        case kRecEntry:
          if (rec.size() == 3)
            log_.push_back(LogEntry{rec[1], decodeValue(rec[2])});
          break;
        case kRecTruncate:
          if (rec.size() == 2 && rec[1] >= snapshotIndex_ &&
              rec[1] - snapshotIndex_ <= log_.size()) {
            log_.resize(rec[1] - snapshotIndex_);
          }
          break;
        case kRecSnapshot: {
          if (rec.size() < 4) break;
          snapshotIndex_ = rec[1];
          snapshotTerm_ = rec[2];
          const std::uint64_t logLen = rec[3];
          if (rec.size() < 4 + 2 * logLen + 1) break;
          log_.clear();
          for (std::uint64_t i = 0; i < logLen; ++i) {
            log_.push_back(LogEntry{rec[4 + 2 * i],
                                    decodeValue(rec[4 + 2 * i + 1])});
          }
          const std::size_t stateAt = 4 + 2 * logLen;
          const std::uint64_t stateLen = rec[stateAt];
          if (rec.size() < stateAt + 1 + stateLen) break;
          std::vector<Value> state;
          for (std::uint64_t i = 0; i < stateLen; ++i)
            state.push_back(decodeValue(rec[stateAt + 1 + i]));
          commitIndex_ = snapshotIndex_;
          lastApplied_ = snapshotIndex_;
          restoreSnapshot(state);
          break;
        }
        default:
          break;  // unknown tag: ignore (forward compatibility)
      }
    }
    commitIndex_ = snapshotIndex_;
    lastApplied_ = snapshotIndex_;
  }
  OOC_DEBUG("raft p", ctx().self(), " recovered: t=", currentTerm_,
            " log=", log_.size(), " snap=", snapshotIndex_);
  resetElectionTimer();
}

// --- journalling ------------------------------------------------------------

void RaftProcess::persist(std::vector<std::uint64_t> record) {
  if (!wal_) return;
  wal_->append(record);
  if (config_.syncBeforeReply) wal_->sync();
}

void RaftProcess::persistMeta() {
  persist({kRecMeta, currentTerm_,
           votedFor_ ? static_cast<std::uint64_t>(*votedFor_) + 1 : 0});
}

void RaftProcess::persistEntry(const LogEntry& entry) {
  persist({kRecEntry, entry.term, encodeValue(entry.command)});
}

void RaftProcess::persistTruncate() {
  persist({kRecTruncate, lastLogIndex()});
}

void RaftProcess::persistSnapshot() {
  if (!wal_) return;
  std::vector<std::uint64_t> rec{kRecSnapshot, snapshotIndex_, snapshotTerm_,
                                 log_.size()};
  for (const LogEntry& entry : log_) {
    rec.push_back(entry.term);
    rec.push_back(encodeValue(entry.command));
  }
  const std::vector<Value> state = captureSnapshot();
  rec.push_back(state.size());
  for (Value v : state) rec.push_back(encodeValue(v));
  persist(std::move(rec));
}

void RaftProcess::recordVote(ProcessId candidate) {
  voteHistory_.push_back(
      VoteRecord{currentTerm_, candidate, ctx().incarnation()});
}

// --- timers ----------------------------------------------------------------

void RaftProcess::resetElectionTimer() {
  if (electionTimer_ != 0) ctx().cancelTimer(electionTimer_);
  const Tick timeout = static_cast<Tick>(ctx().rng().between(
      static_cast<std::int64_t>(config_.electionTimeoutMin),
      static_cast<std::int64_t>(config_.electionTimeoutMax)));
  electionTimer_ = ctx().setTimer(timeout);
}

void RaftProcess::stopElectionTimer() {
  if (electionTimer_ != 0) {
    ctx().cancelTimer(electionTimer_);
    electionTimer_ = 0;
  }
}

void RaftProcess::startHeartbeatTimer() {
  heartbeatTimer_ = ctx().setTimer(config_.heartbeatInterval);
}

void RaftProcess::onTimer(TimerId id) {
  if (id == electionTimer_) {
    electionTimer_ = 0;
    onElectionTimeout();
    becomeCandidate();
    return;
  }
  if (id == heartbeatTimer_ && role_ == Role::kLeader) {
    broadcastAppends();
    startHeartbeatTimer();
  }
}

// --- role transitions --------------------------------------------------------

void RaftProcess::becomeFollower(Term term) {
  const Role old = role_;
  if (term > currentTerm_) {
    currentTerm_ = term;
    votedFor_.reset();
    persistMeta();
  }
  role_ = Role::kFollower;
  resetElectionTimer();
  if (old != Role::kFollower) {
    OOC_DEBUG("raft p", ctx().self(), " -> follower (t=", currentTerm_, ")");
    onRoleChanged(old);
  }
}

void RaftProcess::becomeCandidate() {
  const Role old = role_;
  role_ = Role::kCandidate;
  ++currentTerm_;
  ++electionsStarted_;
  votedFor_ = ctx().self();
  persistMeta();
  recordVote(ctx().self());
  std::fill(votesGranted_.begin(), votesGranted_.end(), false);
  votesGranted_[ctx().self()] = true;
  resetElectionTimer();
  OOC_DEBUG("raft p", ctx().self(), " -> candidate (t=", currentTerm_, ")");
  if (old != Role::kCandidate) onRoleChanged(old);

  if (2 * 1 > ctx().processCount()) {  // single-node cluster wins instantly
    becomeLeader();
    return;
  }
  // One shared RequestVote for the whole electorate; each post adds a ref.
  const auto request = makeMessage<RequestVote>(currentTerm_, ctx().self(),
                                                lastLogIndex(), lastLogTerm());
  for (ProcessId peer = 0; peer < ctx().processCount(); ++peer) {
    if (peer == ctx().self()) continue;
    ctx().post(peer, request);
  }
}

void RaftProcess::becomeLeader() {
  const Role old = role_;
  role_ = Role::kLeader;
  ++timesElectedLeader_;
  stopElectionTimer();
  std::fill(nextIndex_.begin(), nextIndex_.end(), lastLogIndex() + 1);
  std::fill(matchIndex_.begin(), matchIndex_.end(), LogIndex{0});
  matchIndex_[ctx().self()] = lastLogIndex();
  if (lastLogIndex() > commitIndex_) {
    // Uncommitted (prior-term) tail: append the subclass's no-op barrier so
    // the commit rule has a current-term entry to fire on (see
    // leaderBarrier()).
    if (const std::optional<Value> barrier = leaderBarrier()) {
      log_.push_back(LogEntry{currentTerm_, *barrier});
      persistEntry(log_.back());
      matchIndex_[ctx().self()] = lastLogIndex();
    }
  }
  OOC_DEBUG("raft p", ctx().self(), " -> LEADER (t=", currentTerm_, ")");
  onRoleChanged(old);
  onBecameLeader();
  broadcastAppends();
  startHeartbeatTimer();
}

// --- client ------------------------------------------------------------------

bool RaftProcess::submit(Value command) {
  if (role_ != Role::kLeader) return false;
  log_.push_back(LogEntry{currentTerm_, command});
  persistEntry(log_.back());
  matchIndex_[ctx().self()] = lastLogIndex();
  advanceCommitIndex();  // single-node clusters commit immediately
  broadcastAppends();
  return true;
}

// --- replication -------------------------------------------------------------

void RaftProcess::sendAppendTo(ProcessId peer) {
  const LogIndex next = nextIndex_[peer];
  if (next <= snapshotIndex_) {
    // The entries this follower needs were compacted away: ship the state
    // machine as of lastApplied (>= snapshotIndex) instead.
    ctx().send(peer, std::make_unique<InstallSnapshot>(
                         currentTerm_, ctx().self(), lastApplied_,
                         termAt(lastApplied_), captureSnapshot()));
    return;
  }
  const LogIndex prevIndex = next - 1;
  const Term prevTerm = prevIndex == 0 ? 0 : termAt(prevIndex);
  std::vector<LogEntry> entries;
  const LogIndex last = std::min<LogIndex>(
      lastLogIndex(), prevIndex + config_.maxEntriesPerAppend);
  for (LogIndex i = next; i <= last; ++i) entries.push_back(entryAt(i));
  ctx().send(peer, std::make_unique<AppendEntries>(
                       currentTerm_, ctx().self(), prevIndex, prevTerm,
                       std::move(entries), commitIndex_));
}

void RaftProcess::broadcastAppends() {
  for (ProcessId peer = 0; peer < ctx().processCount(); ++peer) {
    if (peer == ctx().self()) continue;
    sendAppendTo(peer);
  }
}

void RaftProcess::advanceCommitIndex() {
  // Find the highest N > commitIndex replicated on a majority with
  // log[N].term == currentTerm (the Raft commit rule; committing only
  // current-term entries is what makes Leader Completeness hold).
  const std::size_t n = ctx().processCount();
  for (LogIndex candidate = lastLogIndex(); candidate > commitIndex_;
       --candidate) {
    if (entryAt(candidate).term != currentTerm_) break;
    std::size_t replicas = 0;
    for (ProcessId peer = 0; peer < n; ++peer)
      if (matchIndex_[peer] >= candidate) ++replicas;
    if (2 * replicas > n) {
      commitIndex_ = candidate;
      applyCommitted();
      onCommitAdvanced();
      // Tell followers promptly so they can advance too (the "second kind"
      // of AppendEntries — here an empty append carrying the new index).
      broadcastAppends();
      return;
    }
  }
}

void RaftProcess::applyCommitted() {
  while (lastApplied_ < commitIndex_) {
    ++lastApplied_;
    onApply(lastApplied_, entryAt(lastApplied_));
  }
  maybeAutoCompact();
}

void RaftProcess::onApply(LogIndex, const LogEntry&) {}

void RaftProcess::maybeAutoCompact() {
  if (config_.compactionThreshold == 0) return;
  if (lastApplied_ - snapshotIndex_ >= config_.compactionThreshold)
    compactTo(lastApplied_);
}

void RaftProcess::compactTo(LogIndex upto) {
  if (upto <= snapshotIndex_) return;  // already covered
  if (upto > lastApplied_)
    throw std::logic_error("cannot compact beyond the applied prefix");
  const Term boundaryTerm = termAt(upto);
  log_.erase(log_.begin(),
             log_.begin() + static_cast<std::ptrdiff_t>(upto - snapshotIndex_));
  snapshotIndex_ = upto;
  snapshotTerm_ = boundaryTerm;
  ++snapshotsTaken_;
  persistSnapshot();
  OOC_DEBUG("raft p", ctx().self(), " compacted through ", upto);
}

// --- message dispatch ----------------------------------------------------------

void RaftProcess::onMessage(ProcessId from, const Message& message) {
  if (const auto* msg = message.as<RequestVote>()) {
    handleRequestVote(from, *msg);
  } else if (const auto* msg = message.as<RequestVoteReply>()) {
    handleRequestVoteReply(from, *msg);
  } else if (const auto* msg = message.as<AppendEntries>()) {
    handleAppendEntries(from, *msg);
  } else if (const auto* msg = message.as<AppendEntriesReply>()) {
    handleAppendEntriesReply(from, *msg);
  } else if (const auto* msg = message.as<InstallSnapshot>()) {
    handleInstallSnapshot(from, *msg);
  }
}

void RaftProcess::handleRequestVote(ProcessId from, const RequestVote& msg) {
  if (msg.term > currentTerm_) becomeFollower(msg.term);
  bool grant = false;
  if (msg.term == currentTerm_ && role_ == Role::kFollower &&
      (!votedFor_ || *votedFor_ == msg.candidate)) {
    // Up-to-date check (election restriction, Raft §5.4.1).
    const bool upToDate =
        msg.lastLogTerm > lastLogTerm() ||
        (msg.lastLogTerm == lastLogTerm() &&
         msg.lastLogIndex >= lastLogIndex());
    if (upToDate) {
      grant = true;
      const bool firstVoteThisTerm = !votedFor_.has_value();
      votedFor_ = msg.candidate;
      if (firstVoteThisTerm) {
        // Persist (and, under sync-before-reply, sync) the vote BEFORE the
        // reply leaves: once the candidate counts it, forgetting it would
        // let this node vote twice in the term after a restart.
        persistMeta();
        recordVote(msg.candidate);
      }
      resetElectionTimer();
    }
  }
  ctx().send(from,
             std::make_unique<RequestVoteReply>(currentTerm_, grant));
}

void RaftProcess::handleRequestVoteReply(ProcessId from,
                                         const RequestVoteReply& msg) {
  if (msg.term > currentTerm_) {
    becomeFollower(msg.term);
    return;
  }
  if (role_ != Role::kCandidate || msg.term != currentTerm_ || !msg.granted)
    return;
  votesGranted_[from] = true;
  const auto votes = static_cast<std::size_t>(
      std::count(votesGranted_.begin(), votesGranted_.end(), true));
  if (2 * votes > ctx().processCount()) becomeLeader();
}

void RaftProcess::handleAppendEntries(ProcessId from,
                                      const AppendEntries& msg) {
  if (msg.term < currentTerm_) {
    ctx().send(from, std::make_unique<AppendEntriesReply>(currentTerm_,
                                                          false, 0));
    return;
  }
  // Valid leader for our term (or newer): follow it.
  if (msg.term > currentTerm_ || role_ != Role::kFollower) {
    becomeFollower(msg.term);
  } else {
    resetElectionTimer();
  }

  // Consistency check: our log must contain prevLogIndex with prevLogTerm.
  // Indices at or below our snapshot are committed state and definitionally
  // consistent (Leader Completeness: a legitimate leader agrees on them).
  if (msg.prevLogIndex > lastLogIndex() ||
      (msg.prevLogIndex > snapshotIndex_ &&
       entryAt(msg.prevLogIndex).term != msg.prevLogTerm)) {
    ctx().send(from, std::make_unique<AppendEntriesReply>(currentTerm_,
                                                          false, 0));
    return;
  }

  // Append new entries, removing conflicting suffixes.
  bool appended = false;
  LogIndex index = msg.prevLogIndex;
  for (const LogEntry& entry : msg.entries) {
    ++index;
    if (index <= snapshotIndex_) continue;  // covered by our snapshot
    if (index <= lastLogIndex()) {
      if (entryAt(index).term == entry.term) continue;  // already have it
      // Conflict: drop it and everything after.
      log_.resize(index - snapshotIndex_ - 1);
      persistTruncate();
    }
    log_.push_back(entry);
    persistEntry(entry);
    appended = true;
  }
  if (appended) onEntriesAccepted();

  if (msg.leaderCommit > commitIndex_) {
    commitIndex_ = std::min<LogIndex>(msg.leaderCommit, lastLogIndex());
    applyCommitted();
    onCommitAdvanced();
  }
  ctx().send(from, std::make_unique<AppendEntriesReply>(
                       currentTerm_, true,
                       std::min<LogIndex>(index, lastLogIndex())));
}

void RaftProcess::handleAppendEntriesReply(ProcessId from,
                                           const AppendEntriesReply& msg) {
  if (msg.term > currentTerm_) {
    becomeFollower(msg.term);
    return;
  }
  if (role_ != Role::kLeader || msg.term != currentTerm_) return;

  if (!msg.success) {
    // Backtrack and retry with an earlier prefix (Figure 2's NextIndex
    // decrement loop).
    if (nextIndex_[from] > 1) --nextIndex_[from];
    sendAppendTo(from);
    return;
  }
  matchIndex_[from] = std::max(matchIndex_[from], msg.matchIndex);
  nextIndex_[from] = matchIndex_[from] + 1;
  advanceCommitIndex();
  // Keep pushing if the follower still trails.
  if (nextIndex_[from] <= lastLogIndex()) sendAppendTo(from);
}

void RaftProcess::handleInstallSnapshot(ProcessId from,
                                        const InstallSnapshot& msg) {
  if (msg.term < currentTerm_) {
    ctx().send(from, std::make_unique<AppendEntriesReply>(currentTerm_,
                                                          false, 0));
    return;
  }
  if (msg.term > currentTerm_ || role_ != Role::kFollower) {
    becomeFollower(msg.term);
  } else {
    resetElectionTimer();
  }

  if (msg.lastIncludedIndex <= commitIndex_ ||
      msg.lastIncludedIndex <= snapshotIndex_) {
    // Stale or duplicate: we already hold this prefix as committed data.
    ctx().send(from, std::make_unique<AppendEntriesReply>(
                         currentTerm_, true, msg.lastIncludedIndex));
    return;
  }

  // Retain any consistent suffix beyond the snapshot; otherwise drop the
  // whole log and start from the snapshot boundary.
  if (msg.lastIncludedIndex < lastLogIndex() &&
      msg.lastIncludedIndex > snapshotIndex_ &&
      entryAt(msg.lastIncludedIndex).term == msg.lastIncludedTerm) {
    log_.erase(log_.begin(),
               log_.begin() + static_cast<std::ptrdiff_t>(
                                  msg.lastIncludedIndex - snapshotIndex_));
  } else {
    log_.clear();
  }
  restoreSnapshot(msg.state);
  snapshotIndex_ = msg.lastIncludedIndex;
  snapshotTerm_ = msg.lastIncludedTerm;
  commitIndex_ = std::max(commitIndex_, snapshotIndex_);
  lastApplied_ = snapshotIndex_;
  ++snapshotsInstalled_;
  persistSnapshot();
  OOC_DEBUG("raft p", ctx().self(), " installed snapshot through ",
            snapshotIndex_);
  applyCommitted();  // in case commitIndex advanced past the snapshot
  onCommitAdvanced();
  ctx().send(from, std::make_unique<AppendEntriesReply>(currentTerm_, true,
                                                        snapshotIndex_));
}

}  // namespace ooc::raft

// The decentralized Raft variant sketched at the end of paper §4.3:
// "instead of electing a leader ..., everyone broadcasts the command they
// want logged and once someone sees a majority it sends out a
// commit-to-that-command message."
//
// Expressed as a template VAC, this gives convergence (which leader-based
// Raft lacks, as the paper notes) and — as the paper observes — "results in
// an algorithm that highly resembles Ben-Or's", differing only in the
// reconciliator. Experiment E12 quantifies the resemblance by running both
// VACs under the same template and reconciliator.
//
//   DecentralizedRaftVac(v, m):
//     broadcast Propose{v}; wait for n-t proposals
//     if some value w holds a strict majority of all n: broadcast Commit{w}
//     else: broadcast Abstain
//     wait for n-t second-phase messages
//     > t Commit{w}  => (commit, w)     -- commit-index-advance analogue
//     >= 1 Commit{w} => (adopt, w)      -- tentative-append analogue
//     otherwise      => (vacillate, v)  -- no leader heard
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/objects.hpp"

namespace ooc::raft {

struct DecProposeMessage final : MessageBase<DecProposeMessage> {
  explicit DecProposeMessage(Value value) : value(value) {}
  Value value;
  std::string describe() const override {
    return "dec<propose," + std::to_string(value) + ">";
  }
};

struct DecCommitMessage final : MessageBase<DecCommitMessage> {
  DecCommitMessage(bool commit, Value value) : commit(commit), value(value) {}
  bool commit;  // false = abstain
  Value value;
  std::string describe() const override {
    return commit ? "dec<commit," + std::to_string(value) + ">"
                  : "dec<abstain>";
  }
};

class DecentralizedRaftVac final : public AgreementDetector {
 public:
  explicit DecentralizedRaftVac(std::size_t faultTolerance);

  void invoke(ObjectContext& ctx, Value v) override;
  void onMessage(ObjectContext& ctx, ProcessId from,
                 const Message& inner) override;
  std::optional<Outcome> result() const override { return outcome_; }

  static DetectorFactory factory(std::size_t faultTolerance);

 private:
  void maybeFinishProposals(ObjectContext& ctx);
  void maybeFinish();

  std::size_t t_;
  Value input_ = kNoValue;
  bool commitPhaseSent_ = false;
  std::optional<Outcome> outcome_;

  std::vector<bool> proposalSeen_;
  std::vector<bool> commitSeen_;
  std::size_t proposalCount_ = 0;
  std::size_t commitPhaseCount_ = 0;
  std::unordered_map<Value, std::size_t> proposalTally_;
  std::unordered_map<Value, std::size_t> commitTally_;
  std::optional<Value> anyCommitSeen_;
};

}  // namespace ooc::raft

// Quickstart: five processors reach binary consensus through the paper's
// generic template (Algorithm 1) with Ben-Or's VAC (Algorithm 5) and the
// coin-flip reconciliator (Algorithm 6), over a simulated asynchronous
// network. Prints the round-by-round object outcomes of every processor.
//
//   $ ./quickstart [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "benor/reconciliators.hpp"
#include "benor/vac.hpp"
#include "core/consensus_process.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ooc;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  constexpr std::size_t kProcessors = 5;
  constexpr std::size_t kFaultTolerance = 2;  // t < n/2
  const std::vector<Value> inputs = {0, 1, 0, 1, 1};

  // 1. A simulated asynchronous network: per-message delays in [1, 10].
  SimConfig simConfig;
  simConfig.seed = seed;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 10;
  Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));

  // 2. One ConsensusProcess per processor: the template loop around a
  //    detector factory (who checks how close we are to agreement) and a
  //    driver factory (who shakes a stalemate).
  std::vector<ConsensusProcess*> processors;
  for (ProcessId id = 0; id < kProcessors; ++id) {
    ConsensusProcess::Options options;
    options.kind = TemplateKind::kVacReconciliator;
    auto process = std::make_unique<ConsensusProcess>(
        inputs[id], benor::BenOrVac::factory(kFaultTolerance),
        benor::CoinReconciliator::factory(), options);
    processors.push_back(process.get());
    sim.addProcess(std::move(process));
  }

  // 3. Run until every processor has decided.
  sim.setValidValues(inputs);
  sim.stopWhenAllCorrectDecided();
  sim.run();

  // 4. Show what happened.
  std::printf("seed %llu: consensus on inputs {0,1,0,1,1}\n\n",
              static_cast<unsigned long long>(seed));
  for (ProcessId id = 0; id < kProcessors; ++id) {
    const ConsensusProcess& p = *processors[id];
    std::printf("processor %u (input %lld):\n", id,
                static_cast<long long>(inputs[id]));
    Round m = 0;
    for (const RoundRecord& record : p.rounds()) {
      ++m;
      if (!record.detectorOutcome) break;
      std::printf("  round %u: VAC(%lld) -> %-16s", m,
                  static_cast<long long>(record.detectorInput),
                  toString(*record.detectorOutcome).c_str());
      if (record.driverValue) {
        std::printf("  reconciliator -> %lld",
                    static_cast<long long>(*record.driverValue));
      }
      std::printf("\n");
      if (record.detectorOutcome->confidence == Confidence::kCommit) break;
    }
    std::printf("  decided %lld in round %u\n\n",
                static_cast<long long>(p.decisionValue()), p.decisionRound());
  }

  std::printf("agreement: %s, validity: %s, messages sent: %llu, ticks: %llu\n",
              sim.agreementViolated() ? "VIOLATED" : "ok",
              sim.validityViolated() ? "VIOLATED" : "ok",
              static_cast<unsigned long long>(sim.messagesSent()),
              static_cast<unsigned long long>(sim.now()));
  return sim.agreementViolated() || sim.validityViolated() ? 1 : 0;
}

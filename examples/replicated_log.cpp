// Replicated key-value log on Raft — the conventional use of the paper's
// third case study (§4.3). Five replicas elect a leader, replicate writes,
// survive a leader-side partition, and converge after healing.
//
//   $ ./replicated_log [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "raft/kv_store.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ooc;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  SimConfig simConfig;
  simConfig.seed = seed;
  simConfig.maxTicks = 400000;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 5;
  auto partitioned = std::make_unique<PartitionedNetwork>(
      std::make_unique<UniformDelayNetwork>(net));
  auto* network = partitioned.get();
  Simulator sim(simConfig, std::move(partitioned));

  std::vector<raft::KvStoreNode*> replicas;
  for (int i = 0; i < 5; ++i) {
    auto node = std::make_unique<raft::KvStoreNode>(raft::RaftConfig{});
    replicas.push_back(node.get());
    sim.addProcess(std::move(node));
  }

  auto leaderOf = [&]() -> raft::KvStoreNode* {
    for (auto* node : replicas)
      if (node->role() == raft::Role::kLeader) return node;
    return nullptr;
  };

  // Phase 1: after the first election settles, write ten keys.
  sim.schedule(2000, [&] {
    if (auto* leader = leaderOf()) {
      std::printf("[tick %6llu] leader elected; writing k0..k9\n",
                  static_cast<unsigned long long>(sim.now()));
      for (std::uint32_t k = 0; k < 10; ++k) leader->set(k, 1000 + k);
    }
  });

  // Phase 2: partition replicas {3,4} away from the majority.
  sim.schedule(6000, [&] {
    std::printf("[tick %6llu] partition: {0,1,2} | {3,4}\n",
                static_cast<unsigned long long>(sim.now()));
    network->setPartition({0, 0, 0, 1, 1});
  });

  // Phase 3: the majority side keeps accepting writes.
  sim.schedule(8000, [&] {
    if (auto* leader = leaderOf()) {
      if (leader == replicas[3] || leader == replicas[4]) return;
      std::printf("[tick %6llu] majority side writes k10..k14\n",
                  static_cast<unsigned long long>(sim.now()));
      for (std::uint32_t k = 10; k < 15; ++k) leader->set(k, 1000 + k);
    }
  });

  // Phase 4: heal; the minority replicas must catch up.
  sim.schedule(20000, [&] {
    std::printf("[tick %6llu] partition healed\n",
                static_cast<unsigned long long>(sim.now()));
    network->clearPartition();
  });

  sim.setStopPredicate([&](const Simulator&) {
    for (auto* node : replicas)
      if (node->appliedCount() < 15) return false;
    return true;
  });
  sim.run();

  std::printf("\nfinal state after %llu ticks:\n",
              static_cast<unsigned long long>(sim.now()));
  bool consistent = true;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const auto* node = replicas[i];
    std::printf("  replica %zu: role=%-9s term=%llu log=%llu applied=%llu "
                "keys=%zu\n",
                i, toString(node->role()),
                static_cast<unsigned long long>(node->currentTerm()),
                static_cast<unsigned long long>(node->lastLogIndex()),
                static_cast<unsigned long long>(node->appliedCount()),
                node->data().size());
    consistent = consistent && node->data() == replicas[0]->data();
  }
  std::printf("\nreplica state machines identical: %s\n",
              consistent ? "yes" : "NO");
  if (consistent) {
    std::printf("sample: k7=%u k12=%u\n", replicas[0]->data().at(7),
                replicas[0]->data().at(12));
  }
  return consistent ? 0 : 1;
}

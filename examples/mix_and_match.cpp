// The object-oriented payoff: swap detectors and reconciliators inside the
// SAME template and compare behaviour — no algorithm rewrites, just
// different object names resolved through the composition registry
// (paper §3, §6).
//
// Detectors:      Ben-Or VAC | VAC-from-2xAC (§5) | decentralized-Raft VAC
// Reconciliators: local coin | common coin | biased coin
//
//   $ ./mix_and_match [runs-per-cell]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "compose/composition.hpp"
#include "compose/registry.hpp"
#include "compose/run.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace ooc;

  const int runs = argc > 1 ? std::atoi(argv[1]) : 40;

  const std::vector<std::string> detectors = {
      "benor-vac", "vac-from-two-ac", "decentralized-vac"};
  const std::vector<std::string> drivers = {
      "local-coin", "common-coin", "biased-coin"};

  std::printf("n=8 split inputs, %d seeded runs per combination\n\n", runs);
  Table table({"detector", "reconciliator", "mean rounds", "p95 rounds",
               "mean msgs", "all ok"});

  for (const std::string& detector : detectors) {
    for (const std::string& driver : drivers) {
      Summary rounds, messages;
      bool allOk = true;
      for (int run = 0; run < runs; ++run) {
        compose::Composition composition;
        composition.detector = detector;
        composition.driver = driver;
        composition.n = 8;
        composition.inputs = {0, 1, 0, 1, 0, 1, 0, 1};
        composition.seed = 1000 + static_cast<std::uint64_t>(run);
        composition.bias = 0.8;
        const auto result = compose::runComposition(composition);
        allOk = allOk && result.allDecided && !result.agreementViolated &&
                !result.validityViolated && result.allAuditsOk;
        rounds.add(result.meanDecisionRound);
        messages.add(static_cast<double>(result.messagesByCorrect));
      }
      const std::string label =
          driver == "biased-coin" ? "biased-coin(0.8)" : driver;
      table.addRow({detector, label, Table::cell(rounds.mean()),
                    Table::cell(rounds.p95()), Table::cell(messages.mean(), 0),
                    allOk ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Every cell is the same template code — only the plugged-in\n"
              "objects differ. That interchangeability is the paper's "
              "thesis.\n\n");

  // The registry also knows which pairings are NOT algorithms: ask it why
  // an adopt-commit detector cannot drive the reconciliator template.
  if (const auto diagnostic = compose::registry().validatePairing(
          "phaseking-ac", "local-coin")) {
    std::printf("And the pairings the paper rules out stay ruled out:\n"
                "  %s\n", diagnostic->c_str());
  }
  return 0;
}

// The object-oriented payoff: swap detectors and reconciliators inside the
// SAME template and compare behaviour — no algorithm rewrites, just
// different objects (paper §3, §6).
//
// Detectors:      Ben-Or VAC | VAC-from-2xAC (§5) | decentralized-Raft VAC
// Reconciliators: local coin | common coin | biased coin
//
//   $ ./mix_and_match [runs-per-cell]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/scenarios.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace ooc;
  using harness::BenOrConfig;

  const int runs = argc > 1 ? std::atoi(argv[1]) : 40;

  struct DetectorChoice {
    const char* name;
    BenOrConfig::Mode mode;
  };
  struct ReconChoice {
    const char* name;
    BenOrConfig::Reconciliator reconciliator;
  };
  const std::vector<DetectorChoice> detectors = {
      {"benor-vac", BenOrConfig::Mode::kDecomposed},
      {"vac-from-2ac", BenOrConfig::Mode::kVacFromTwoAc},
      {"decentralized-raft", BenOrConfig::Mode::kDecentralizedVac},
  };
  const std::vector<ReconChoice> recons = {
      {"local-coin", BenOrConfig::Reconciliator::kLocalCoin},
      {"common-coin", BenOrConfig::Reconciliator::kCommonCoin},
      {"biased-coin(0.8)", BenOrConfig::Reconciliator::kBiasedCoin},
  };

  std::printf("n=8 split inputs, %d seeded runs per combination\n\n", runs);
  Table table({"detector", "reconciliator", "mean rounds", "p95 rounds",
               "mean msgs", "all ok"});

  for (const auto& detector : detectors) {
    for (const auto& recon : recons) {
      Summary rounds, messages;
      bool allOk = true;
      for (int run = 0; run < runs; ++run) {
        BenOrConfig config;
        config.n = 8;
        config.inputs = {0, 1, 0, 1, 0, 1, 0, 1};
        config.seed = 1000 + static_cast<std::uint64_t>(run);
        config.mode = detector.mode;
        config.reconciliator = recon.reconciliator;
        config.bias = 0.8;
        const auto result = runBenOr(config);
        allOk = allOk && result.allDecided && !result.agreementViolated &&
                !result.validityViolated && result.allAuditsOk;
        rounds.add(result.meanDecisionRound);
        messages.add(static_cast<double>(result.messagesByCorrect));
      }
      table.addRow({detector.name, recon.name, Table::cell(rounds.mean()),
                    Table::cell(rounds.p95()), Table::cell(messages.mean(), 0),
                    allOk ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Every cell is the same template code — only the plugged-in\n"
              "objects differ. That interchangeability is the paper's "
              "thesis.\n");
  return 0;
}

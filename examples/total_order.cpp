// Total-order broadcast from first principles: every log slot is one run of
// the paper's consensus template. Four branch offices submit ledger
// transactions concurrently; all replicas end with the identical, totally
// ordered ledger — no leader, no terms, just detector + reconciliator
// objects per slot.
//
//   $ ./total_order [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "benor/reconciliators.hpp"
#include "benor/vac.hpp"
#include "log/replicated_log.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ooc;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  constexpr std::size_t kBranches = 4;
  constexpr std::uint32_t kTransfersPerBranch = 3;
  constexpr std::size_t kT = (kBranches - 1) / 2;

  SimConfig simConfig;
  simConfig.seed = seed;
  simConfig.maxTicks = 2'000'000;
  UniformDelayNetwork::Options net;
  net.minDelay = 1;
  net.maxDelay = 8;
  Simulator sim(simConfig, std::make_unique<UniformDelayNetwork>(net));

  std::vector<log::ReplicatedLogNode*> branches;
  for (ProcessId id = 0; id < kBranches; ++id) {
    std::vector<Value> transfers;
    for (std::uint32_t k = 0; k < kTransfersPerBranch; ++k)
      transfers.push_back(log::makeCommand(id, k));
    auto node = std::make_unique<log::ReplicatedLogNode>(
        std::move(transfers),
        [](std::uint64_t) { return benor::BenOrVac::factory(kT); },
        [seed](std::uint64_t slot) {
          return benor::LotteryReconciliator::factory(
              kT, seed ^ (slot * 0x9E3779B97F4A7C15ull));
        },
        log::ReplicatedLogNode::Options{});
    branches.push_back(node.get());
    sim.addProcess(std::move(node));
  }

  sim.setStopPredicate([&branches](const Simulator&) {
    const std::size_t length = branches[0]->log().size();
    for (const auto* branch : branches)
      if (!branch->drained() || branch->log().size() != length) return false;
    return length > 0;
  });
  sim.run();

  std::printf("ledger after %llu ticks (%llu messages):\n\n",
              static_cast<unsigned long long>(sim.now()),
              static_cast<unsigned long long>(sim.messagesSent()));
  const auto ledger = branches[0]->committedCommands();
  for (std::size_t i = 0; i < ledger.size(); ++i) {
    std::printf("  #%02zu transfer %u from branch %u\n", i + 1,
                static_cast<unsigned>(ledger[i] & 0xffffffff),
                log::commandNode(ledger[i]));
  }

  bool identical = true;
  for (const auto* branch : branches)
    identical = identical && branch->log() == branches[0]->log();
  const std::size_t slots = branches[0]->log().size();
  std::printf("\n%zu transfers in %zu slots (%zu no-op slots); all %zu "
              "replica ledgers identical: %s\n",
              ledger.size(), slots, slots - ledger.size(), kBranches,
              identical ? "yes" : "NO");
  return identical && ledger.size() == kBranches * kTransfersPerBranch ? 0
                                                                       : 1;
}

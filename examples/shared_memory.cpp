// Aspnes' original shared-memory framework [2], live: wait-free binary
// consensus from register-based adopt-commit + probabilistic-write
// conciliator, under an adversarial step scheduler — and the same run
// through the paper's richer VAC + reconciliator loop (Algorithm 1).
//
//   $ ./shared_memory [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "shmem/consensus.hpp"
#include "shmem/executor.hpp"
#include "shmem/vac_consensus.hpp"

int main(int argc, char** argv) {
  using namespace ooc;
  using namespace ooc::shmem;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  constexpr std::size_t kProcesses = 6;

  for (const SchedulePolicy policy :
       {SchedulePolicy::kRoundRobin, SchedulePolicy::kRandom,
        SchedulePolicy::kSkewed}) {
    std::printf("=== %s schedule ===\n", toString(policy));

    // Algorithm 2 loop: AC + conciliator.
    {
      SharedArena arena;
      StepScheduler scheduler(policy, seed);
      std::vector<std::unique_ptr<ShmemConsensus>> ps;
      for (std::size_t i = 0; i < kProcesses; ++i) {
        ps.push_back(std::make_unique<ShmemConsensus>(
            arena, static_cast<Value>(i % 2), 1.0 / kProcesses,
            seed * 100 + i));
        scheduler.add(*ps.back());
      }
      const auto steps = scheduler.run();
      std::printf("  AC+conciliator : decided %lld in %llu steps (",
                  static_cast<long long>(ps[0]->decisionValue()),
                  static_cast<unsigned long long>(steps));
      for (const auto& p : ps)
        std::printf("%llu ", static_cast<unsigned long long>(
                                 p->currentRound()));
      std::printf("rounds per process)\n");
    }

    // Algorithm 1 loop: VAC (two chained ACs) + reconciliator.
    {
      SharedArena arena;
      StepScheduler scheduler(policy, seed);
      std::vector<std::unique_ptr<ShmemVacConsensus>> ps;
      for (std::size_t i = 0; i < kProcesses; ++i) {
        ps.push_back(std::make_unique<ShmemVacConsensus>(
            arena, static_cast<Value>(i % 2), 1.0 / kProcesses,
            seed * 100 + i));
        scheduler.add(*ps.back());
      }
      const auto steps = scheduler.run();
      bool agreed = true;
      for (const auto& p : ps)
        agreed = agreed && p->decisionValue() == ps[0]->decisionValue();
      std::printf("  VAC+reconciler : decided %lld in %llu steps, "
                  "agreement %s\n\n",
                  static_cast<long long>(ps[0]->decisionValue()),
                  static_cast<unsigned long long>(steps),
                  agreed ? "ok" : "VIOLATED");
      if (!agreed) return 1;
    }
  }
  std::printf("same objects, two models: the decomposition is the "
              "algorithm; the substrate is a plug-in.\n");
  return 0;
}

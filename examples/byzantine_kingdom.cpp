// Byzantine agreement with Phase-King under attack.
//
// Seven processors, two of them Byzantine equivocators seated at the front
// of the king rotation (they reign first). The correct five still agree,
// within t+1 honest-king rounds, using the paper's decomposition:
// adopt-commit (Algorithm 3) + king conciliator (Algorithm 4) inside the
// AC/conciliator template (Algorithm 2).
//
//   $ ./byzantine_kingdom [strategy]   strategy in {silent, random,
//                                      equivocate, lying-king, anti-king}
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace ooc;
  using harness::PhaseKingConfig;
  using phaseking::ByzantineStrategy;

  ByzantineStrategy strategy = ByzantineStrategy::kEquivocate;
  if (argc > 1) {
    const std::string name = argv[1];
    if (name == "silent") strategy = ByzantineStrategy::kSilent;
    else if (name == "random") strategy = ByzantineStrategy::kRandom;
    else if (name == "equivocate") strategy = ByzantineStrategy::kEquivocate;
    else if (name == "lying-king") strategy = ByzantineStrategy::kLyingKing;
    else if (name == "anti-king") strategy = ByzantineStrategy::kAntiKing;
    else {
      std::fprintf(stderr, "unknown strategy '%s'\n", name.c_str());
      return 2;
    }
  }

  PhaseKingConfig config;
  config.n = 7;
  config.byzantineCount = 2;  // the maximum: t = floor((7-1)/3) = 2
  config.strategy = strategy;
  config.placement = PhaseKingConfig::Placement::kFront;
  config.inputs = {0, 1};  // alternating inputs among the correct five

  std::printf("Phase-King: n=7, Byzantine=2 (%s, seated as kings 1 and 2)\n",
              toString(strategy));
  std::printf("correct processors propose 0,1,0,1,0\n\n");

  const auto result = runPhaseKing(config);

  std::printf("all correct decided:  %s\n", result.allDecided ? "yes" : "NO");
  std::printf("agreed value:         %lld\n",
              static_cast<long long>(result.decidedValue));
  std::printf("rounds used:          %u (t+1 honest-king bound: first "
              "correct king reigns round 3)\n",
              result.maxDecisionRound);
  std::printf("agreement:            %s\n",
              result.agreementViolated ? "VIOLATED" : "ok");
  std::printf("validity:             %s\n",
              result.validityViolated ? "VIOLATED" : "ok");
  std::printf("object contracts:     %s\n",
              result.allAuditsOk ? "all rounds ok" : "VIOLATED");
  std::printf("messages by correct:  %llu\n",
              static_cast<unsigned long long>(result.messagesByCorrect));

  // Round-by-round confidence mix across the correct processors.
  std::printf("\nper-round outcome mix (correct processors):\n");
  for (std::size_t m = 0; m < result.audits.size(); ++m) {
    const auto& audit = result.audits[m];
    std::printf("  round %zu: %s%s%s\n", m + 1,
                audit.anyCommit ? "commit " : "",
                audit.anyAdopt ? "adopt " : "",
                audit.anyVacillate ? "vacillate" : "");
  }
  return result.agreementViolated || !result.allDecided ? 1 : 0;
}

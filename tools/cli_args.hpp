// Shared flag parsing for the tools/ CLIs.
//
// Every binary used to carry its own copy of the next/nextNumber/nextDouble
// lambdas; this header is the single spelling. Error behaviour is part of
// the CLI contract (scripts grep for it): a missing or malformed value
// prints `<tool>: <flag> needs a ...` to stderr and exits with status 2.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

namespace ooc::cli {

/// Cursor-style access to flag values in argv. The methods advance `i`
/// past the consumed value, mirroring the loop variable of the usual
/// `for (int i = 1; i < argc; ++i)` dispatch.
class ArgParser {
 public:
  ArgParser(std::string tool, int argc, char** argv)
      : tool_(std::move(tool)), argc_(argc), argv_(argv) {}

  /// The value following flag argv[i], or exit(2) if argv ends first.
  const char* next(int& i) const {
    if (i + 1 >= argc_) {
      std::cerr << tool_ << ": " << argv_[i] << " needs a value\n";
      std::exit(2);
    }
    return argv_[++i];
  }

  /// next(), parsed as an unsigned integer (the whole token must parse).
  std::uint64_t nextNumber(int& i) const {
    const char* flag = argv_[i];
    const std::string value = next(i);
    try {
      std::size_t consumed = 0;
      const std::uint64_t parsed = std::stoull(value, &consumed);
      if (consumed != value.size()) throw std::invalid_argument(value);
      return parsed;
    } catch (const std::exception&) {
      std::cerr << tool_ << ": " << flag << " needs a number, got '" << value
                << "'\n";
      std::exit(2);
    }
  }

  /// next(), parsed as a double (the whole token must parse).
  double nextDouble(int& i) const {
    const char* flag = argv_[i];
    const std::string value = next(i);
    try {
      std::size_t consumed = 0;
      const double parsed = std::stod(value, &consumed);
      if (consumed != value.size()) throw std::invalid_argument(value);
      return parsed;
    } catch (const std::exception&) {
      std::cerr << tool_ << ": " << flag << " needs a number, got '" << value
                << "'\n";
      std::exit(2);
    }
  }

 private:
  std::string tool_;
  int argc_;
  char** argv_;
};

}  // namespace ooc::cli

// `trace_view` — renders a recorded counterexample file as an annotated
// per-process timeline.
//
// The schedule trace inside a counterexample only knows scheduler events;
// trace_view re-executes the scenario (runs are pure functions of
// configuration + seed, and the re-execution is verified bit-identical
// against the recorded trace) with the telemetry tap attached, so the
// timeline shows the protocol-level story too: every detector confidence
// transition, every driver value, and the decisions.
//
//   trace_view counterexamples/agreement-0.trace
//   trace_view --no-deliveries FILE        # protocol structure only
//   trace_view --max-events 40 FILE        # cap scheduler noise per lane
//   trace_view --perfetto FILE > t.json    # Chrome trace_event JSON for
//                                          # ui.perfetto.dev
//
// Exit status: 0 rendered, 1 replay divergence (--perfetto), 2 usage/parse
// failure.
#include <cstdlib>
#include <iostream>
#include <string>

#include "check/causal_run.hpp"
#include "check/replay.hpp"
#include "check/timeline.hpp"
#include "obs/causal/perfetto.hpp"

namespace {

void printUsage(std::ostream& os) {
  os << "usage: trace_view [options] FILE\n"
        "  FILE                a counterexample written by `check`\n"
        "  --no-deliveries     hide message-delivery events\n"
        "  --no-timers         hide timer-fire events\n"
        "  --max-events N      per-process cap on scheduler events "
        "(0 = unlimited)\n"
        "  --perfetto          emit Chrome trace_event / Perfetto JSON "
        "instead of\n"
        "                      the text timeline (load in ui.perfetto.dev)\n"
        "  --help              this text\n";
}

int renderPerfetto(const std::string& path) {
  const ooc::check::CounterexampleFile file =
      ooc::check::loadCounterexampleFile(path);
  const ooc::check::CausalRun run =
      ooc::check::collectCausalRun(file.scenario, &file.trace);
  if (!run.replayIdentical) {
    std::cerr << "trace_view: re-execution DIVERGED from the recorded "
                 "trace\n";
    if (run.divergence) std::cerr << "  " << *run.divergence << "\n";
    return 1;
  }
  std::cout << ooc::causal::toPerfettoJson(run.trace,
                                           ooc::check::causalMeta(file))
            << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ooc::check::TimelineOptions options;
  bool perfetto = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-deliveries") {
      options.showDeliveries = false;
    } else if (arg == "--no-timers") {
      options.showTimers = false;
    } else if (arg == "--perfetto") {
      perfetto = true;
    } else if (arg == "--max-events") {
      if (i + 1 >= argc) {
        std::cerr << "trace_view: --max-events needs a value\n";
        return 2;
      }
      options.maxEventsPerProcess =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "trace_view: unknown option '" << arg << "'\n";
      printUsage(std::cerr);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "trace_view: only one FILE\n";
      return 2;
    }
  }
  if (path.empty()) {
    printUsage(std::cerr);
    return 2;
  }

  try {
    if (perfetto) return renderPerfetto(path);
    const ooc::check::CounterexampleFile file =
        ooc::check::loadCounterexampleFile(path);
    std::cout << ooc::check::renderTimeline(file, options);
  } catch (const std::exception& error) {
    std::cerr << "trace_view: " << error.what() << "\n";
    return 2;
  }
  return 0;
}

// `check` — schedule-exploration model checker CLI.
//
// Sweeps exploration strategies (multi-seed random walks, delay-bounded
// message reordering, targeted crash-schedule enumeration) over the
// consensus families, evaluates the safety invariant suite against every
// run, shrinks each finding to a locally minimal configuration and writes
// a standalone counterexample file that replays bit-identically.
//
//   check                                  # default sweep, all families
//   check --family benor --seeds 10000     # big Ben-Or seed sweep
//   check --strategy crash --family raft   # enumerate Raft crash schedules
//   check --plant-vac-bug                  # prove the checker catches bugs
//   check --replay FILE                    # re-execute a counterexample
//
// Exit status: 0 clean, 1 violations found (or replay diverged), 2 usage.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <fstream>

#include "check/checker.hpp"
#include "check/invariant.hpp"
#include "check/replay.hpp"
#include "check/scenario.hpp"
#include "check/strategy.hpp"
#include "cli_args.hpp"
#include "compose/composition.hpp"
#include "compose/registry.hpp"
#include "harness/scenarios.hpp"
#include "harness/serialize.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "svc/run.hpp"
#include "sweep/scheduler.hpp"

namespace {

using namespace ooc;
using namespace ooc::check;

struct CliOptions {
  std::string family = "all";  // benor | phaseking | raft | compose | fd |
                               // svc | all
  std::string detector;        // --family compose/fd/svc: registry names
  std::string driver;
  std::string engine;          // --family svc: compose | paxos | raft
  std::string oracle;          // --family fd: registry oracle name
  double oracleNoise = -1.0;   // <0: family default
  std::int64_t oracleStabilize = -1;  // <0: family default
  std::int64_t oracleLag = -1;        // <0: family default
  bool oracleLie = false;
  std::string strategy = "all";  // random | delay | crash | restart |
                                 // oracle | pipeline | skew | all
  std::size_t seeds = 1000;
  std::uint64_t seedBase = 1;
  std::size_t threads = 0;
  bool shrink = true;
  bool requireTermination = true;
  bool plantVacBug = false;
  bool huntAdoptWitness = false;
  std::string traceDir = "counterexamples";
  std::size_t maxFindings = 5;
  std::size_t progressEvery = 0;
  std::string replayPath;
  std::string jsonPath;
  Tick budget = 0;        // 0: default budget grid
  std::size_t maxCrashes = 0;  // 0: family fault budget
  std::size_t maxRestarts = 1;
  bool crashBeforeSync = false;
  std::size_t n = 0;      // 0: family default
  Tick maxDelay = 0;      // 0: family default
};

void printUsage(std::ostream& os) {
  os << "usage: check [options]\n"
        "  --family F        benor | phaseking | raft | compose | fd | svc "
        "| all\n"
        "                    (default all = the legacy families)\n"
        "  --detector D      compose/fd/svc only: registry detector name\n"
        "  --driver R        compose/fd/svc only: registry driver name\n"
        "  --engine E        svc only: compose | paxos | raft (default "
        "compose)\n"
        "  --oracle O        fd only: omega | diamond-s | perfect-p "
        "(default omega)\n"
        "  --oracle-noise X  fd only: base false-suspicion probability\n"
        "  --oracle-stabilize T  fd only: base stabilization tick\n"
        "  --oracle-lag T    fd only: base completeness lag\n"
        "  --oracle-lie      fd only: oracle advertises a bound it misses\n"
        "                    (expected to FAIL fd-accuracy)\n"
        "  --strategy S      random | delay | crash | restart | oracle | "
        "pipeline | skew | all (default all)\n"
        "  --seeds N         random-walk runs per family (default 1000)\n"
        "  --seed-base N     first seed of the sweep (default 1)\n"
        "  --threads N       worker threads (default: hardware)\n"
        "  --n N             base process count (default: family default)\n"
        "  --max-delay D     base network delay bound\n"
        "  --budget B        single delay-adversary budget (default: grid)\n"
        "  --max-crashes K   crash-enumeration budget (default: fault "
        "budget)\n"
        "  --max-restarts K  restart-enumeration budget (default 1)\n"
        "  --crash-before-sync  raft only: disable the sync-before-reply "
        "discipline\n"
        "                    so restarts recover stale journals (expected "
        "to FAIL)\n"
        "  --max-findings N  stop after N findings (default 5)\n"
        "  --trace-out DIR   counterexample output dir (default "
        "counterexamples);\n"
        "                    --trace-dir is accepted as an alias\n"
        "  --progress N      print a progress line to stderr every N "
        "explored\n"
        "                    configurations (default: off)\n"
        "  --no-shrink       report findings without minimizing them\n"
        "  --no-termination  drop the termination invariant\n"
        "  --plant-vac-bug   Ben-Or only: plant the vac-adopt-flip fault\n"
        "  --hunt-adopt-witness  hunt paper-style decide-on-adopt "
        "witnesses\n"
        "  --replay FILE     re-execute a counterexample file and verify "
        "it\n"
        "  --json FILE       write a machine-readable sweep summary "
        "(schema ooc.check.v1)\n"
        "  --help            this text\n";
}

Scenario baseScenario(Family family, const CliOptions& options) {
  Scenario scenario;
  scenario.family = family;
  switch (family) {
    case Family::kBenOr: {
      auto& config = scenario.benOr;
      if (options.n > 0) config.n = options.n;
      if (options.maxDelay > 0) config.maxDelay = options.maxDelay;
      config.inputs.resize(config.n);
      for (std::size_t i = 0; i < config.n; ++i)
        config.inputs[i] = static_cast<Value>(i % 2);
      if (options.plantVacBug)
        config.fault = harness::BenOrConfig::Fault::kVacAdoptFlip;
      break;
    }
    case Family::kPhaseKing:
      if (options.n > 0) scenario.phaseKing.n = options.n;
      break;
    case Family::kRaft:
      if (options.n > 0) scenario.raft.n = options.n;
      if (options.maxDelay > 0) scenario.raft.maxDelay = options.maxDelay;
      // Restart exploration exercises the durability subsystem: the clean
      // direction journals with the safe sync discipline; --crash-before-sync
      // drops the discipline so recovery can resurrect stale state.
      scenario.raft.raft.durable = true;
      scenario.raft.raft.syncBeforeReply = !options.crashBeforeSync;
      break;
    case Family::kCompose:
    case Family::kFd: {
      auto& config = scenario.compose;
      if (family == Family::kFd) {
        // The fd family's home base: rotating coordinator consuming Ω
        // over a mildly imperfect oracle (noisy until tick 40).
        config.driver = "ct-coordinator";
        config.oracle = "omega";
        config.oracleKnobs.completenessLag = 8;
        config.oracleKnobs.stabilizeAt = 40;
        config.oracleKnobs.noise = 0.25;
        if (!options.oracle.empty()) config.oracle = options.oracle;
        if (options.oracleNoise >= 0.0)
          config.oracleKnobs.noise = options.oracleNoise;
        if (options.oracleStabilize >= 0)
          config.oracleKnobs.stabilizeAt =
              static_cast<Tick>(options.oracleStabilize);
        if (options.oracleLag >= 0)
          config.oracleKnobs.completenessLag =
              static_cast<Tick>(options.oracleLag);
        config.oracleKnobs.lieAboutBound = options.oracleLie;
      }
      if (!options.detector.empty()) config.detector = options.detector;
      if (!options.driver.empty()) config.driver = options.driver;
      if (options.n > 0) config.n = options.n;
      if (options.maxDelay > 0) config.maxDelay = options.maxDelay;
      config.inputs.resize(config.n);
      for (std::size_t i = 0; i < config.n; ++i)
        config.inputs[i] = static_cast<Value>(i % 2);
      break;
    }
    case Family::kSvc: {
      auto& config = scenario.svc;
      if (!options.engine.empty()) config.engine = options.engine;
      if (!options.detector.empty()) config.detector = options.detector;
      if (!options.driver.empty()) config.driver = options.driver;
      if (options.n > 0) config.n = options.n;
      if (options.maxDelay > 0) config.maxDelay = options.maxDelay;
      // Checker-scale traffic: enough commands to fill the pipeline and
      // survive a mid-run fault, small enough for thousands of cells.
      config.workload.clients = 64;
      config.workload.commandsPerNode = 8;
      config.workload.thinkMin = 5;
      config.workload.thinkMax = 40;
      config.workload.startSpread = 16;
      config.service.maxDecrees = 400;
      break;
    }
  }
  return scenario;
}

std::unique_ptr<ExplorationStrategy> buildStrategy(
    Family family, const CliOptions& options) {
  const Scenario base = baseScenario(family, options);
  std::vector<std::unique_ptr<ExplorationStrategy>> parts;

  const bool wantRandom =
      options.strategy == "all" || options.strategy == "random";
  const bool wantDelay =
      options.strategy == "all" || options.strategy == "delay";
  const bool wantCrash =
      options.strategy == "all" || options.strategy == "crash";
  const bool wantRestart =
      options.strategy == "all" || options.strategy == "restart";
  const bool wantOracle =
      options.strategy == "all" || options.strategy == "oracle";
  const bool wantPipeline =
      options.strategy == "all" || options.strategy == "pipeline";
  const bool wantSkew =
      options.strategy == "all" || options.strategy == "skew";

  // Compose scenarios carry their capability descriptor in the registry:
  // delay adversaries need an asynchronous detector, crash enumeration a
  // crash-model one. Skip silently on "all"; an explicit --strategy still
  // reaches the strategy constructor, which throws the diagnostic.
  bool composeAsync = true;
  bool composeCrashModel = true;
  if (family == Family::kCompose || family == Family::kFd) {
    const auto& capability =
        compose::registry().detector(base.compose.detector).capability;
    composeAsync =
        capability.mode != compose::InvocationMode::kLockstep;
    composeCrashModel =
        capability.faultModel == compose::FaultModel::kCrash;
  }

  if (wantRandom) {
    RandomWalkStrategy::Options rw;
    rw.seedBase = options.seedBase;
    rw.runs = options.seeds;
    parts.push_back(std::make_unique<RandomWalkStrategy>(base, rw));
  }
  if (wantDelay && family != Family::kPhaseKing &&
      (options.strategy == "delay" || composeAsync)) {
    DelayBoundStrategy::Options db;
    if (options.budget > 0) db.budgets = {options.budget};
    db.adversarySeedBase = options.seedBase;
    parts.push_back(std::make_unique<DelayBoundStrategy>(base, db));
  }
  if (wantCrash && family != Family::kPhaseKing &&
      (options.strategy == "crash" || composeCrashModel)) {
    CrashScheduleStrategy::Options cs;
    cs.maxCrashes = options.maxCrashes;
    parts.push_back(std::make_unique<CrashScheduleStrategy>(base, cs));
  }
  if (wantRestart && family == Family::kRaft) {
    RestartScheduleStrategy::Options rs;
    rs.maxRestarts = options.maxRestarts;
    rs.seedBase = options.seedBase;
    parts.push_back(std::make_unique<RestartScheduleStrategy>(base, rs));
  }
  if (wantOracle && family == Family::kFd) {
    OracleQualityStrategy::Options oq;
    oq.seedBase = options.seedBase;
    parts.push_back(std::make_unique<OracleQualityStrategy>(base, oq));
  }
  if (wantPipeline && family == Family::kSvc) {
    SvcPipelineStrategy::Options sp;
    sp.seedBase = options.seedBase;
    parts.push_back(std::make_unique<SvcPipelineStrategy>(base, sp));
  }
  // The round-skew sweep only earns its cells when the pairing admits a
  // non-lockstep policy; on "all" a lockstep-only pairing skips it (the
  // lockstep column is the random walk's territory). An explicit
  // --strategy skew still constructs, sweeping whatever the registry
  // admits.
  if (wantSkew && (family == Family::kCompose || family == Family::kFd) &&
      (options.strategy == "skew" ||
       !compose::registry().validateScheduling(
           base.compose.detector, base.compose.driver,
           SchedulingPolicy::kEventDriven))) {
    RoundSkewStrategy::Options rs;
    rs.seedBase = options.seedBase;
    parts.push_back(std::make_unique<RoundSkewStrategy>(base, rs));
  }
  if (parts.empty()) return nullptr;
  if (parts.size() == 1) return std::move(parts.front());
  return std::make_unique<CompositeStrategy>(
      std::string(toString(family)) + "-sweep", std::move(parts));
}

void printFinding(const Finding& finding) {
  std::cout << "  VIOLATION [" << finding.violation.invariant
            << "] at index " << finding.configIndex << "\n"
            << "    detail:  " << finding.violation.detail << "\n"
            << "    config:  " << describe(finding.scenario) << "\n";
  if (finding.shrunk) {
    std::cout << "    shrunk:  " << describe(*finding.shrunk) << " ("
              << finding.shrinkAttempts << " shrink attempts)\n";
  }
  if (!finding.tracePath.empty()) {
    std::cout << "    trace:   " << finding.tracePath << "\n"
              << "    repro:   check --replay " << finding.tracePath
              << "\n";
  }
}

int runReplay(const CliOptions& options) {
  CounterexampleFile file;
  try {
    file = loadCounterexampleFile(options.replayPath);
  } catch (const std::exception& error) {
    std::cerr << "check: " << error.what() << "\n";
    return 2;
  }
  std::cout << "replaying " << options.replayPath << "\n"
            << "  invariant: " << file.invariant << "\n"
            << "  detail:    " << file.detail << "\n"
            << "  config:    " << describe(file.scenario) << "\n";

  const ReplayResult replay = replayRun(file.scenario, file.trace);
  std::cout << "  schedule:  "
            << (replay.identical ? "bit-identical to recorded trace"
                                 : "DIVERGED")
            << "\n";
  if (!replay.identical && replay.divergence)
    std::cout << "    " << *replay.divergence << "\n";

  // Re-evaluate the recorded invariant against the replayed run.
  auto suite = safetySuite(true);
  suite.push_back(std::make_unique<AdoptWitnessInvariant>());
  bool reproduced = false;
  for (const auto& invariant : suite) {
    if (file.invariant != invariant->name()) continue;
    if (auto violation = invariant->check(file.scenario, replay.report)) {
      reproduced = true;
      std::cout << "  violation: reproduced (" << violation->detail
                << ")\n";
    } else {
      std::cout << "  violation: NOT reproduced\n";
    }
  }
  return replay.identical && reproduced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  const ooc::cli::ArgParser args("check", argc, argv);
  const auto next = [&](int& i) { return args.next(i); };
  const auto nextNumber = [&](int& i) { return args.nextNumber(i); };
  const auto nextDouble = [&](int& i) { return args.nextDouble(i); };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--family") options.family = next(i);
    else if (arg == "--detector") options.detector = next(i);
    else if (arg == "--driver") options.driver = next(i);
    else if (arg == "--engine") options.engine = next(i);
    else if (arg == "--oracle") options.oracle = next(i);
    else if (arg == "--oracle-noise") options.oracleNoise = nextDouble(i);
    else if (arg == "--oracle-stabilize")
      options.oracleStabilize = static_cast<std::int64_t>(nextNumber(i));
    else if (arg == "--oracle-lag")
      options.oracleLag = static_cast<std::int64_t>(nextNumber(i));
    else if (arg == "--oracle-lie") options.oracleLie = true;
    else if (arg == "--strategy") options.strategy = next(i);
    else if (arg == "--seeds") options.seeds = nextNumber(i);
    else if (arg == "--seed-base") options.seedBase = nextNumber(i);
    else if (arg == "--threads") options.threads = nextNumber(i);
    else if (arg == "--n") options.n = nextNumber(i);
    else if (arg == "--max-delay") options.maxDelay = nextNumber(i);
    else if (arg == "--budget") options.budget = nextNumber(i);
    else if (arg == "--max-crashes")
      options.maxCrashes = nextNumber(i);
    else if (arg == "--max-restarts")
      options.maxRestarts = nextNumber(i);
    else if (arg == "--crash-before-sync")
      options.crashBeforeSync = true;
    else if (arg == "--max-findings")
      options.maxFindings = nextNumber(i);
    else if (arg == "--trace-out" || arg == "--trace-dir")
      options.traceDir = next(i);
    else if (arg == "--progress") options.progressEvery = nextNumber(i);
    else if (arg == "--no-shrink") options.shrink = false;
    else if (arg == "--no-termination") options.requireTermination = false;
    else if (arg == "--plant-vac-bug") options.plantVacBug = true;
    else if (arg == "--hunt-adopt-witness")
      options.huntAdoptWitness = true;
    else if (arg == "--replay") options.replayPath = next(i);
    else if (arg == "--json") options.jsonPath = next(i);
    else if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else {
      std::cerr << "check: unknown option '" << arg << "'\n";
      printUsage(std::cerr);
      return 2;
    }
  }

  if (!options.replayPath.empty()) return runReplay(options);

  std::vector<Family> families;
  if (options.family == "all") {
    families = {Family::kBenOr, Family::kPhaseKing, Family::kRaft};
  } else {
    try {
      families = {parseFamily(options.family)};
    } catch (const std::exception& error) {
      std::cerr << "check: " << error.what() << "\n";
      return 2;
    }
  }
  if (options.strategy != "all" && options.strategy != "random" &&
      options.strategy != "delay" && options.strategy != "crash" &&
      options.strategy != "restart" && options.strategy != "oracle" &&
      options.strategy != "pipeline" && options.strategy != "skew") {
    std::cerr << "check: unknown strategy '" << options.strategy << "'\n";
    return 2;
  }
  if (options.plantVacBug && options.family != "benor") {
    std::cerr << "check: --plant-vac-bug needs --family benor\n";
    return 2;
  }
  if (options.crashBeforeSync && options.family != "raft") {
    std::cerr << "check: --crash-before-sync needs --family raft\n";
    return 2;
  }
  if (options.strategy == "restart" && options.family != "raft") {
    std::cerr << "check: --strategy restart needs --family raft\n";
    return 2;
  }
  if (options.strategy == "oracle" && options.family != "fd") {
    std::cerr << "check: --strategy oracle needs --family fd\n";
    return 2;
  }
  if (options.strategy == "pipeline" && options.family != "svc") {
    std::cerr << "check: --strategy pipeline needs --family svc\n";
    return 2;
  }
  if (options.strategy == "skew" && options.family != "compose" &&
      options.family != "fd") {
    std::cerr << "check: --strategy skew needs --family compose or fd\n";
    return 2;
  }
  if ((!options.detector.empty() || !options.driver.empty()) &&
      options.family != "compose" && options.family != "fd" &&
      options.family != "svc") {
    std::cerr << "check: --detector/--driver need --family compose, fd or "
                 "svc\n";
    return 2;
  }
  if (!options.engine.empty() && options.family != "svc") {
    std::cerr << "check: --engine needs --family svc\n";
    return 2;
  }
  if ((!options.oracle.empty() || options.oracleNoise >= 0.0 ||
       options.oracleStabilize >= 0 || options.oracleLag >= 0 ||
       options.oracleLie) &&
      options.family != "fd") {
    std::cerr << "check: --oracle* flags need --family fd\n";
    return 2;
  }
  if (options.family == "compose" || options.family == "fd") {
    // Reject invalid pairings (and incoherent oracle attachments) before
    // the sweep, with the same registry diagnostic a scenario-file load or
    // compose_cli would print.
    try {
      compose::resolve(baseScenario(families.front(), options).compose);
    } catch (const std::exception& error) {
      std::cerr << "check: " << error.what() << "\n";
      return 2;
    }
  }
  if (options.family == "svc") {
    // Same early rejection for the service's engine capability gate.
    try {
      const Scenario base = baseScenario(families.front(), options);
      if (const auto rejected = svc::validateEngine(base.svc)) {
        std::cerr << "check: " << *rejected << "\n";
        return 2;
      }
    } catch (const std::exception& error) {
      std::cerr << "check: " << error.what() << "\n";
      return 2;
    }
  }

  // Witness hunting looks for schedules where decide-on-adopt would have
  // broken agreement — evidence for the paper's §5 argument, not bugs — so
  // it replaces the safety suite.
  std::vector<std::unique_ptr<Invariant>> suite;
  if (options.huntAdoptWitness) {
    suite.push_back(std::make_unique<AdoptWitnessInvariant>());
  } else {
    suite = safetySuite(options.requireTermination);
  }
  const std::vector<const Invariant*> invariants = view(suite);

  CheckerOptions checker;
  checker.threads = options.threads;
  checker.shrink = options.shrink;
  checker.maxFindings = options.maxFindings;
  checker.traceDir = options.traceDir;
  checker.progressEvery = options.progressEvery;

  // The registry stays disabled on plain sweeps (the 10k-seed check.sh path
  // must not pay telemetry costs); --json opts in. Counter/histogram updates
  // are commutative, so the snapshot is deterministic despite the worker
  // threads.
  if (!options.jsonPath.empty()) {
    obs::metrics().reset();
    obs::metrics().enable(true);
  }

  struct FamilyOutcome {
    std::string family;
    std::string strategy;
    std::size_t configsExplored = 0;
    std::vector<Finding> findings;
    SweepStats sweep;
  };
  std::vector<FamilyOutcome> outcomes;

  std::size_t totalFindings = 0;
  std::size_t totalExplored = 0;
  for (const Family family : families) {
    const auto strategy = buildStrategy(family, options);
    if (!strategy) {
      std::cout << "== " << toString(family)
                << ": no applicable strategy, skipped\n";
      continue;
    }
    std::cout << "== " << toString(family) << ": exploring "
              << strategy->size() << " configurations (" << strategy->name()
              << ")\n";
    const std::string familyName = toString(family);
    checker.onProgress = [&familyName](std::size_t explored,
                                       std::size_t total,
                                       std::size_t findings) {
      std::cerr << "   [" << familyName << "] " << explored << "/" << total
                << " configurations, " << findings << " finding(s)\n";
    };
    CheckReport report = explore(*strategy, invariants, checker);
    for (const Finding& finding : report.findings) printFinding(finding);
    std::cout << "   explored " << report.configsExplored
              << " configurations, " << report.findings.size()
              << " violation(s)";
    if (report.sweep.elapsedSeconds > 0.0) {
      std::cout << " [" << report.sweep.workers << " workers, "
                << static_cast<std::uint64_t>(report.sweep.configsPerSec)
                << " configs/s, " << report.sweep.steals << " steals]";
    }
    std::cout << "\n";
    totalFindings += report.findings.size();
    totalExplored += report.configsExplored;
    outcomes.push_back(FamilyOutcome{familyName, strategy->name(),
                                     report.configsExplored,
                                     std::move(report.findings),
                                     std::move(report.sweep)});
  }
  std::cout << (totalFindings == 0 ? "OK" : "FAIL") << ": "
            << totalExplored << " configurations, " << totalFindings
            << " violation(s)\n";

  if (!options.jsonPath.empty()) {
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("ooc.check.v1");
    w.key("families").beginArray();
    for (const FamilyOutcome& outcome : outcomes) {
      w.beginObject();
      w.key("family").value(outcome.family);
      w.key("strategy").value(outcome.strategy);
      w.key("configs_explored")
          .value(static_cast<std::uint64_t>(outcome.configsExplored));
      w.key("findings").beginArray();
      for (const Finding& finding : outcome.findings) {
        const Scenario& scenario =
            finding.shrunk ? *finding.shrunk : finding.scenario;
        w.beginObject();
        w.key("invariant").value(finding.violation.invariant);
        w.key("detail").value(finding.violation.detail);
        w.key("config").value(describe(scenario));
        w.key("run_id").value(harness::configRunId(serialize(scenario)));
        w.key("trace").value(finding.tracePath);
        w.endObject();
      }
      w.endArray();
      // Scheduler telemetry (shared schema, sweep::toJson). The only
      // wall-clock (and thus non-reproducible) section of ooc.check.v1 —
      // byte-diff consumers must strip the `sweep` objects first
      // (everything else is deterministic for a fixed configuration).
      w.key("sweep").raw(ooc::sweep::toJson(outcome.sweep));
      w.endObject();
    }
    w.endArray();
    w.key("total").beginObject();
    w.key("configs_explored").value(static_cast<std::uint64_t>(totalExplored));
    w.key("violations").value(static_cast<std::uint64_t>(totalFindings));
    w.endObject();
    w.key("metrics").raw(obs::metrics().toJson());
    w.endObject();

    std::ofstream out(options.jsonPath, std::ios::binary);
    if (!out) {
      std::cerr << "check: cannot write '" << options.jsonPath << "'\n";
      return 2;
    }
    out << w.str() << '\n';
  }
  return totalFindings == 0 ? 0 : 1;
}

// Regenerates the golden determinism artifacts under tests/golden/ (see
// src/check/golden.hpp). Run after an INTENDED schedule or serialization
// change, then review the diff:
//
//   build/tools/golden_gen tests/golden
#include <cstdio>
#include <fstream>
#include <string>

#include "check/golden.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: golden_gen <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  for (const auto& fixture : ooc::check::goldenFixtures()) {
    const std::string path = dir + "/" + fixture.name + ".golden";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "golden_gen: cannot write '%s'\n", path.c_str());
      return 2;
    }
    out << ooc::check::renderGolden(fixture);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

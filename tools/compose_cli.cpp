// `compose` — object-registry composition CLI (experiments E20 and E22).
//
// Front door to the composition engine: lists the registered detectors,
// drivers and oracles with their capability descriptors, runs any single
// pairing from a CLI spec string (optionally with an oracle attached),
// sweeps the full detector × driver cross-product into the ooc.matrix.v1
// JSON artifact, or sweeps oracle quality × crash schedules for the
// oracle-consuming drivers into the ooc.fd-matrix.v1 artifact.
//
//   compose --list                      # registered objects + capabilities
//   compose --spec benor-vac+timer     # run one composition
//   compose --spec benor-vac+ct-coordinator --oracle omega
//   compose                             # E20: full cross-product matrix
//   compose --quick --json matrix.json  # CI smoke: 5 runs/cell + artifact
//   compose --fd-matrix --json fd.json  # E22: oracle-quality matrix
//
// Exit status: 0 clean, 1 safety violation (matrix) or undecided/unsafe
// single run, 2 usage — including rejected pairings, which print the
// registry's capability diagnostic.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "check/replay.hpp"
#include "check/scenario.hpp"
#include "cli_args.hpp"
#include "compose/composition.hpp"
#include "compose/matrix.hpp"
#include "compose/registry.hpp"
#include "compose/run.hpp"

namespace {

using namespace ooc;
using namespace ooc::compose;

struct CliOptions {
  bool list = false;
  std::string spec;
  int runs = 0;       // 0: matrix default
  std::uint64_t seedBase = 0;  // 0: matrix default
  std::size_t n = 0;  // --spec only; 0 keeps the Composition default
  std::uint64_t seed = 0;  // --spec only; 0 keeps the default
  bool quick = false;
  bool fdMatrix = false;
  bool roundlessMatrix = false;
  std::size_t threads = 0;  // matrix worker threads; 0 = hardware
  std::string scheduler;       // --spec only; "" keeps lockstep
  std::string oracle;          // --spec only
  double oracleNoise = -1.0;   // <0 keeps the OracleKnobs default
  std::int64_t oracleStabilize = -1;
  std::int64_t oracleLag = -1;
  bool oracleLie = false;
  std::string jsonPath;
  std::string traceOut;  // --spec only: recorded-run trace file
};

void printUsage(std::ostream& os) {
  os << "usage: compose [options]\n"
        "  (no mode flag)    run experiment E20: every registered\n"
        "                    detector x driver pairing, validated against\n"
        "                    the registry and executed when valid\n"
        "  --fd-matrix       run experiment E22 instead: oracle quality x\n"
        "                    crash schedules for the oracle-consuming\n"
        "                    drivers (ooc.fd-matrix.v1)\n"
        "  --roundless-matrix  run experiment E24 instead: scheduling\n"
        "                    policy x engine family, with skew\n"
        "                    observations (ooc.roundless.v1)\n"
        "  --list            list registered objects and capabilities\n"
        "  --spec D+R        run one composition, e.g. benor-vac+timer\n"
        "  --scheduler P     round-scheduling policy for --spec: lockstep\n"
        "                    (default) | event-driven | ooo-driver;\n"
        "                    non-lockstep policies are capability-gated\n"
        "  --oracle O        attach an oracle to --spec: omega | diamond-s\n"
        "                    | perfect-p\n"
        "  --oracle-noise X      false-suspicion probability before\n"
        "                        stabilization\n"
        "  --oracle-stabilize T  tick after which the oracle is accurate\n"
        "  --oracle-lag T        crash-detection lag\n"
        "  --oracle-lie          advertise a stabilization bound the oracle\n"
        "                        misses (expected to FAIL the axiom audit)\n"
        "  --n N             process count for --spec (default 5)\n"
        "  --seed S          seed for --spec (default 1)\n"
        "  --runs N          matrix runs per valid cell (default 20)\n"
        "  --seed-base S     first matrix seed (default 9000)\n"
        "  --quick           matrix smoke mode: fewer runs per cell\n"
        "  --threads N       matrix worker threads (default: hardware;\n"
        "                    output is byte-identical at any value)\n"
        "  --json FILE       write the matrix report\n"
        "  --trace-out FILE  --spec only: record the run as a counterexample\n"
        "                    file (readable by check --replay, trace_view\n"
        "                    and ooc explain/ctrace)\n"
        "  --help            this text\n";
}

void printList() {
  auto& reg = registry();
  std::cout << "detectors:\n";
  for (const auto& name : reg.detectorNames()) {
    const auto& entry = reg.detector(name);
    std::cout << "  " << std::left << std::setw(20) << name
              << toString(entry.capability.detectorClass) << ", "
              << toString(entry.capability.faultModel) << ", "
              << toString(entry.capability.mode)
              << ", t=(n-1)/" << entry.capability.tDivisor << "\n";
  }
  std::cout << "drivers:\n";
  for (const auto& name : reg.driverNames()) {
    const auto& entry = reg.driver(name);
    std::cout << "  " << std::left << std::setw(20) << name
              << toString(entry.capability.driverClass) << ", "
              << toString(entry.capability.mode)
              << (entry.capability.toleratesByzantine ? ""
                                                      : ", crash-only waits")
              << (entry.capability.requiresEveryProcess
                      ? ", every process drives"
                      : "");
    if (entry.capability.oracle != OracleRequirement::kNone)
      std::cout << ", needs oracle (" << toString(entry.capability.oracle)
                << ")";
    std::cout << "\n";
  }
  std::cout << "oracles:\n";
  for (const auto& name : reg.oracleNames()) {
    const auto& entry = reg.oracle(name);
    std::cout << "  " << std::left << std::setw(20) << name
              << toString(entry.capability.oracleClass) << "\n";
  }
}

int runSpec(const CliOptions& options) {
  fd::OracleKnobs knobs;
  if (options.oracleNoise >= 0.0) knobs.noise = options.oracleNoise;
  if (options.oracleStabilize >= 0)
    knobs.stabilizeAt = static_cast<Tick>(options.oracleStabilize);
  if (options.oracleLag >= 0)
    knobs.completenessLag = static_cast<Tick>(options.oracleLag);
  knobs.lieAboutBound = options.oracleLie;
  Composition composition;
  try {
    composition = parseSpec(options.spec, options.oracle, knobs);
  } catch (const std::exception& error) {
    // Unknown names and rejected pairings land here with the registry's
    // capability diagnostic — the same text a scenario file load prints.
    std::cerr << "compose: " << error.what() << "\n";
    return 2;
  }
  if (!options.scheduler.empty()) {
    const auto policy = parseSchedulingPolicy(options.scheduler);
    if (!policy) {
      std::cerr << "compose: unknown scheduler '" << options.scheduler
                << "'; known: lockstep, event-driven, ooo-driver\n";
      return 2;
    }
    composition.scheduler = *policy;
  }
  if (options.n > 0) composition.n = options.n;
  if (options.seed > 0) composition.seed = options.seed;
  CompositionResult result;
  try {
    result = runComposition(composition);
  } catch (const std::exception& error) {
    std::cerr << "compose: " << error.what() << "\n";
    return 2;
  }
  std::cout << composition.detector << " + " << composition.driver
            << " n=" << composition.n << " seed=" << composition.seed
            << "\n"
            << "  decided:    " << (result.allDecided ? "yes" : "NO") << "\n";
  if (result.allDecided)
    std::cout << "  value:      " << result.decidedValue << "\n"
              << "  rounds:     max " << result.maxDecisionRound << ", mean "
              << result.meanDecisionRound << "\n";
  std::cout << "  agreement:  "
            << (result.agreementViolated ? "VIOLATED" : "ok") << "\n"
            << "  validity:   "
            << (result.validityViolated ? "VIOLATED" : "ok") << "\n"
            << "  audits:     " << (result.allAuditsOk ? "ok" : "FAILED")
            << "\n"
            << "  messages:   " << result.messagesByCorrect << "\n";
  if (composition.scheduler != SchedulingPolicy::kLockstep)
    std::cout << "  scheduler:  " << toString(composition.scheduler)
              << " (overlap " << result.overlapWitnesses << ", deferred "
              << result.deferredActivations << ", max skew "
              << result.maxRoundSkew << ")\n";
  if (result.adoptOutcomesTotal > 0)
    std::cout << "  s5-witness: " << result.adoptMismatchWitnesses << " of "
              << result.adoptOutcomesTotal << " adopt outcomes\n";
  if (result.oracleAudit) {
    const auto& audit = *result.oracleAudit;
    std::cout << "  fd-axioms:  " << (audit.ok() ? "ok" : "VIOLATED")
              << " (horizon " << audit.horizon << ")\n";
    if (!audit.completenessOk)
      std::cout << "    completeness: " << audit.completenessDetail << "\n";
    if (!audit.accuracyOk)
      std::cout << "    accuracy:     " << audit.accuracyDetail << "\n";
    if (!audit.convergenceOk)
      std::cout << "    convergence:  " << audit.convergenceDetail << "\n";
  }
  if (!options.traceOut.empty()) {
    // Re-run the composition under the trace recorder (runs are pure
    // functions of the configuration, so the recording matches the run
    // reported above) and save it in the checker's counterexample format —
    // the one trace spelling every tool reads.
    check::Scenario scenario;
    scenario.family = check::Family::kCompose;
    scenario.compose = composition;
    check::CounterexampleFile file;
    file.scenario = scenario;
    file.invariant = "none";
    file.detail = "recorded by compose --trace-out (no violation)";
    try {
      file.trace = check::recordRun(scenario).trace;
      check::writeCounterexampleFile(file, options.traceOut);
    } catch (const std::exception& error) {
      std::cerr << "compose: " << error.what() << "\n";
      return 2;
    }
    std::cout << "  trace:      " << options.traceOut << "\n";
  }
  const bool ok = result.allDecided && !result.agreementViolated &&
                  !result.validityViolated && result.allAuditsOk &&
                  (!result.oracleAudit || result.oracleAudit->ok());
  return ok ? 0 : 1;
}

int runFdMatrixMode(const CliOptions& options) {
  OracleMatrixOptions matrix;
  matrix.quick = options.quick;
  matrix.threads = options.threads;
  if (options.runs > 0) matrix.runsPerCell = options.runs;
  if (options.seedBase > 0) matrix.seedBase = options.seedBase;

  const OracleMatrixReport report = runOracleMatrix(matrix);

  std::cout << "E22 oracle-quality matrix: " << report.drivers.size()
            << " oracle-consuming drivers x " << report.oracles.size()
            << " oracles\n";
  for (const OracleMatrixCell& cell : report.cells) {
    std::cout << "  " << std::left << std::setw(16) << cell.driver << " + "
              << std::setw(12)
              << (cell.oracle.empty() ? "(none)" : cell.oracle);
    if (!cell.valid) {
      std::cout << " rejected: " << cell.diagnostic << "\n";
      continue;
    }
    std::cout << " stabilize=" << std::setw(4) << cell.stabilizeAt
              << " noise=" << std::fixed << std::setprecision(2)
              << cell.noise << std::defaultfloat << std::setprecision(6)
              << " decided " << cell.decided << "/" << cell.runs;
    if (cell.decided > 0)
      std::cout << ", mean rounds " << std::fixed << std::setprecision(2)
                << cell.meanRounds << std::defaultfloat
                << std::setprecision(6);
    if (!cell.agreementOk) std::cout << ", AGREEMENT VIOLATED";
    if (!cell.validityOk) std::cout << ", VALIDITY VIOLATED";
    if (!cell.auditsOk) std::cout << ", AUDITS FAILED";
    if (!cell.fdAxiomsOk) std::cout << ", FD AXIOMS VIOLATED";
    std::cout << "\n";
  }
  std::cout << (report.safetyOk ? "OK" : "FAIL") << ": "
            << report.validCells << " valid cells, "
            << report.rejectedCells << " rejected\n";

  if (!options.jsonPath.empty()) {
    std::ofstream out(options.jsonPath, std::ios::binary);
    if (!out) {
      std::cerr << "compose: cannot write '" << options.jsonPath << "'\n";
      return 2;
    }
    out << oracleMatrixToJson(report, matrix) << '\n';
  }
  return report.safetyOk ? 0 : 1;
}

int runRoundlessMatrixMode(const CliOptions& options) {
  RoundlessMatrixOptions matrix;
  matrix.quick = options.quick;
  matrix.threads = options.threads;
  if (options.runs > 0) matrix.runsPerCell = options.runs;
  if (options.seedBase > 0) matrix.seedBase = options.seedBase;

  const RoundlessMatrixReport report = runRoundlessMatrix(matrix);

  std::cout << "E24 roundless matrix: " << report.engines.size()
            << " engine pairings x " << report.policies.size()
            << " scheduling policies\n";
  for (const RoundlessMatrixCell& cell : report.cells) {
    std::cout << "  " << std::left << std::setw(32)
              << (cell.detector + "+" + cell.driver) << " @ " << std::setw(12)
              << cell.policy;
    if (!cell.valid) {
      std::cout << " rejected: " << cell.diagnostic << "\n";
      continue;
    }
    std::cout << " decided " << cell.decided << "/" << cell.runs;
    if (cell.decided > 0)
      std::cout << ", mean rounds " << std::fixed << std::setprecision(2)
                << cell.meanRounds << std::defaultfloat
                << std::setprecision(6);
    std::cout << ", overlap " << cell.overlapWitnesses << ", deferred "
              << cell.deferredActivations << ", skew " << cell.maxRoundSkew;
    if (!cell.agreementOk) std::cout << ", AGREEMENT VIOLATED";
    if (!cell.validityOk) std::cout << ", VALIDITY VIOLATED";
    if (!cell.auditsOk) std::cout << ", AUDITS FAILED";
    if (!cell.fdAxiomsOk) std::cout << ", FD AXIOMS VIOLATED";
    std::cout << "\n";
  }
  std::cout << (report.safetyOk ? "OK" : "FAIL") << ": "
            << report.validCells << " valid cells, "
            << report.rejectedCells << " rejected\n";

  if (!options.jsonPath.empty()) {
    std::ofstream out(options.jsonPath, std::ios::binary);
    if (!out) {
      std::cerr << "compose: cannot write '" << options.jsonPath << "'\n";
      return 2;
    }
    out << roundlessMatrixToJson(report, matrix) << '\n';
  }
  return report.safetyOk ? 0 : 1;
}

int runMatrixMode(const CliOptions& options) {
  MatrixOptions matrix;
  matrix.quick = options.quick;
  matrix.threads = options.threads;
  if (options.runs > 0) matrix.runsPerCell = options.runs;
  if (options.seedBase > 0) matrix.seedBase = options.seedBase;

  const MatrixReport report = runMatrix(matrix);

  std::cout << "E20 composition matrix: " << report.detectors.size()
            << " detectors x " << report.drivers.size() << " drivers\n";
  for (const MatrixCell& cell : report.cells) {
    std::cout << "  " << std::left << std::setw(20) << cell.detector << " + "
              << std::setw(16) << cell.driver;
    if (!cell.valid) {
      std::cout << " rejected: " << cell.diagnostic << "\n";
      continue;
    }
    std::cout << " decided " << cell.decided << "/" << cell.runs;
    if (cell.decided > 0)
      std::cout << ", mean rounds " << std::fixed << std::setprecision(2)
                << cell.meanRounds << std::defaultfloat
                << std::setprecision(6);
    if (!cell.agreementOk) std::cout << ", AGREEMENT VIOLATED";
    if (!cell.validityOk) std::cout << ", VALIDITY VIOLATED";
    if (!cell.auditsOk) std::cout << ", AUDITS FAILED";
    std::cout << "\n";
  }
  std::cout << (report.safetyOk ? "OK" : "FAIL") << ": "
            << report.validCells << " valid pairings, "
            << report.rejectedCells << " rejected\n";

  if (!options.jsonPath.empty()) {
    std::ofstream out(options.jsonPath, std::ios::binary);
    if (!out) {
      std::cerr << "compose: cannot write '" << options.jsonPath << "'\n";
      return 2;
    }
    out << matrixToJson(report, matrix) << '\n';
  }
  return report.safetyOk ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  const ooc::cli::ArgParser args("compose", argc, argv);
  const auto next = [&](int& i) { return args.next(i); };
  const auto nextNumber = [&](int& i) { return args.nextNumber(i); };
  const auto nextDouble = [&](int& i) { return args.nextDouble(i); };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") options.list = true;
    else if (arg == "--spec") options.spec = next(i);
    else if (arg == "--scheduler") options.scheduler = next(i);
    else if (arg == "--fd-matrix") options.fdMatrix = true;
    else if (arg == "--roundless-matrix") options.roundlessMatrix = true;
    else if (arg == "--oracle") options.oracle = next(i);
    else if (arg == "--oracle-noise") options.oracleNoise = nextDouble(i);
    else if (arg == "--oracle-stabilize")
      options.oracleStabilize = static_cast<std::int64_t>(nextNumber(i));
    else if (arg == "--oracle-lag")
      options.oracleLag = static_cast<std::int64_t>(nextNumber(i));
    else if (arg == "--oracle-lie") options.oracleLie = true;
    else if (arg == "--n") options.n = nextNumber(i);
    else if (arg == "--seed") options.seed = nextNumber(i);
    else if (arg == "--runs")
      options.runs = static_cast<int>(nextNumber(i));
    else if (arg == "--seed-base") options.seedBase = nextNumber(i);
    else if (arg == "--quick") options.quick = true;
    else if (arg == "--threads") options.threads = nextNumber(i);
    else if (arg == "--json") options.jsonPath = next(i);
    else if (arg == "--trace-out") options.traceOut = next(i);
    else if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else {
      std::cerr << "compose: unknown option '" << arg << "'\n";
      printUsage(std::cerr);
      return 2;
    }
  }
  if (options.list) {
    printList();
    return 0;
  }
  if ((!options.oracle.empty() || options.oracleNoise >= 0.0 ||
       options.oracleStabilize >= 0 || options.oracleLag >= 0 ||
       options.oracleLie) &&
      options.spec.empty()) {
    std::cerr << "compose: --oracle* flags need --spec\n";
    return 2;
  }
  if (!options.traceOut.empty() && options.spec.empty()) {
    std::cerr << "compose: --trace-out needs --spec\n";
    return 2;
  }
  if (!options.scheduler.empty() && options.spec.empty()) {
    std::cerr << "compose: --scheduler needs --spec\n";
    return 2;
  }
  if (!options.spec.empty()) return runSpec(options);
  if (options.fdMatrix) return runFdMatrixMode(options);
  if (options.roundlessMatrix) return runRoundlessMatrixMode(options);
  return runMatrixMode(options);
}

// `ooc` — causal-trace toolbox over recorded runs.
//
// Every subcommand starts from a counterexample/golden file (written by
// `check`, `compose --trace-out` or `golden_gen`), re-executes the scenario
// with the causal recorder attached — verifying the re-execution
// bit-identical to the recorded trace — and works on the resulting event
// DAG (vector clocks, cause edges, protocol annotations):
//
//   ooc explain FILE [--out PATH]   # decision provenance (ooc.explain.v1):
//                                   # the minimal message chain behind each
//                                   # decision, with annotations on it
//   ooc ctrace FILE [--out PATH]    # the full DAG as ooc.ctrace.v1
//   ooc audit FILE...               # check causal invariants: edges point
//                                   # backward, vector clocks follow the
//                                   # max-of-parents-plus-one rule, every
//                                   # decision is reachable from a start
//
// Exit status: 0 ok, 1 audit violation or replay divergence, 2 usage.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/causal_run.hpp"
#include "check/replay.hpp"
#include "obs/causal/causal.hpp"
#include "obs/causal/provenance.hpp"

namespace {

using namespace ooc;
using namespace ooc::check;

void printUsage(std::ostream& os) {
  os << "usage: ooc COMMAND ...\n"
        "  ooc explain FILE [--out PATH]   decision provenance "
        "(ooc.explain.v1)\n"
        "  ooc ctrace FILE [--out PATH]    causal event DAG (ooc.ctrace.v1)\n"
        "  ooc audit FILE...               verify causal invariants\n"
        "  FILE is a counterexample/golden trace written by check,\n"
        "  compose --trace-out or golden_gen.\n";
}

int writeOrPrint(const std::string& document, const std::string& outPath) {
  if (outPath.empty()) {
    std::cout << document << '\n';
    return 0;
  }
  std::ofstream out(outPath, std::ios::binary);
  if (!out) {
    std::cerr << "ooc: cannot write '" << outPath << "'\n";
    return 2;
  }
  out << document << '\n';
  return 0;
}

/// explain/ctrace share everything but the serializer.
int runExport(const std::string& command, const std::vector<std::string>& args) {
  std::string path;
  std::string outPath;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (i + 1 >= args.size()) {
        std::cerr << "ooc: --out needs a value\n";
        return 2;
      }
      outPath = args[++i];
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "ooc: unknown option '" << args[i] << "'\n";
      return 2;
    } else if (path.empty()) {
      path = args[i];
    } else {
      std::cerr << "ooc: only one FILE\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "ooc: " << command << " needs a FILE\n";
    return 2;
  }

  CounterexampleFile file;
  try {
    file = loadCounterexampleFile(path);
  } catch (const std::exception& error) {
    std::cerr << "ooc: " << error.what() << "\n";
    return 2;
  }
  const CausalRun run = collectCausalRun(file.scenario, &file.trace);
  if (!run.replayIdentical) {
    std::cerr << "ooc: re-execution DIVERGED from the recorded trace\n";
    if (run.divergence) std::cerr << "  " << *run.divergence << "\n";
    return 1;
  }
  const causal::TraceMeta meta = causalMeta(file);
  const std::string document = command == "explain"
                                   ? causal::explainJson(run.trace, meta)
                                   : causal::toCtraceJson(run.trace, meta);
  return writeOrPrint(document, outPath);
}

int runAudit(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "ooc: audit needs at least one FILE\n";
    return 2;
  }
  bool allOk = true;
  for (const std::string& path : args) {
    CounterexampleFile file;
    try {
      file = loadCounterexampleFile(path);
    } catch (const std::exception& error) {
      std::cerr << "ooc: " << error.what() << "\n";
      return 2;
    }
    const CausalRun run = collectCausalRun(file.scenario, &file.trace);
    if (!run.replayIdentical) {
      allOk = false;
      std::cout << path << ": REPLAY DIVERGED\n";
      if (run.divergence) std::cout << "  " << *run.divergence << "\n";
      continue;
    }
    const causal::CausalAudit audit = causal::audit(run.trace);
    if (audit.ok()) {
      std::cout << path << ": ok (" << run.trace.nodes.size() << " events, "
                << run.trace.annotations.size() << " annotations, "
                << audit.decisions << " decisions)\n";
    } else {
      allOk = false;
      std::cout << path << ": AUDIT FAILED\n";
      for (const std::string& problem : audit.problems)
        std::cout << "  " << problem << "\n";
    }
  }
  return allOk ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    printUsage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    printUsage(std::cout);
    return 0;
  }
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "explain" || command == "ctrace")
    return runExport(command, args);
  if (command == "audit") return runAudit(args);
  std::cerr << "ooc: unknown command '" << command << "'\n";
  printUsage(std::cerr);
  return 2;
}
